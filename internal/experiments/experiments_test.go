package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// quick returns the fast test configuration.
func quick() Config { return QuickConfig }

// render ensures a result renders without error and returns the text.
func render(t *testing.T, r Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("render %s: %v", r.ID(), err)
	}
	if buf.Len() == 0 {
		t.Fatalf("render %s: empty output", r.ID())
	}
	return buf.String()
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Errorf("got %d experiments: %v", len(ids), ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("no title for %s", id)
		}
	}
	if Title("nope") != "" {
		t.Error("unknown id has a title")
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllResultsAreJSONSerializable(t *testing.T) {
	// Smoke-check the cheap experiments end-to-end through JSON, the
	// CLI's -json path.
	for _, id := range []string{"table1", "table2", "guidelines", "wholeprocess"} {
		r, err := Run(id, quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID() != id {
			t.Errorf("result ID %q != %q", r.ID(), id)
		}
		if _, err := json.Marshal(r); err != nil {
			t.Errorf("%s: json: %v", id, err)
		}
		render(t, r)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r, err := runTable1(quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Table1Result)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byTag := map[string]Table1Row{}
	for _, row := range res.Rows {
		byTag[row.Tag] = row
	}
	if byTag["PD"].Programmable != 18 || byTag["PD"].Fixed != 1 {
		t.Errorf("PD counters wrong: %+v", byTag["PD"])
	}
	if byTag["CD"].Programmable != 2 || byTag["CD"].Fixed != 4 {
		t.Errorf("CD counters wrong: %+v", byTag["CD"])
	}
	if byTag["K8"].Programmable != 4 || byTag["K8"].Fixed != 1 {
		t.Errorf("K8 counters wrong: %+v", byTag["K8"])
	}
	out := render(t, res)
	if !strings.Contains(out, "Pentium D 925") {
		t.Error("processor name missing from rendering")
	}
}

func TestTable2Footnote(t *testing.T) {
	r, err := runTable2(quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Table2Result)
	for _, row := range res.Rows {
		wantHL := row.Code == "ar" || row.Code == "ao"
		if row.HighLevelOK != wantHL {
			t.Errorf("%s: high-level support = %v", row.Code, row.HighLevelOK)
		}
	}
	render(t, res)
}

func TestFig4Shape(t *testing.T) {
	r, err := Run("fig4", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig4Result)
	// TSC off must inflate read-read by an order of magnitude.
	if res.MedianRROff < 10*res.MedianRROn {
		t.Errorf("TSC effect too weak: off=%v on=%v", res.MedianRROff, res.MedianRROn)
	}
	if res.MedianRROn < 90 || res.MedianRROn > 130 {
		t.Errorf("rr TSC-on median = %v, want ~109.5", res.MedianRROn)
	}
	if res.MedianRROff < 1500 || res.MedianRROff > 1900 {
		t.Errorf("rr TSC-off median = %v, want ~1698", res.MedianRROff)
	}
	// start-stop unaffected.
	ao := res.Cells["user+kernel"][core.StartStop.String()]
	if d := math.Abs(medianOf(ao[0]) - medianOf(ao[1])); d > 25 {
		t.Errorf("start-stop TSC delta = %v, want ~0", d)
	}
	render(t, res)
}

func TestFig5Shape(t *testing.T) {
	r, err := Run("fig5", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig5Result)
	if pr := res.PerRegisterRR["pm"]; pr < 95 || pr > 130 {
		t.Errorf("pm per-register = %v, want ~112", pr)
	}
	if pr := res.PerRegisterRR["pc"]; pr < 8 || pr > 20 {
		t.Errorf("pc per-register = %v, want ~13", pr)
	}
	// pm user-mode flat at ~37 for all register counts.
	userRR := res.Medians["pm"]["user"][core.ReadRead.String()]
	for i, m := range userRR {
		if m < 34 || m > 41 {
			t.Errorf("pm user rr regs=%d median=%v, want ~37", i+1, m)
		}
	}
	// pc read-read identical in both modes (fast path).
	uk := res.Medians["pc"]["user+kernel"][core.ReadRead.String()]
	u := res.Medians["pc"]["user"][core.ReadRead.String()]
	for i := range uk {
		if uk[i] != u[i] {
			t.Errorf("pc rr regs=%d: u+k %v != user %v", i+1, uk[i], u[i])
		}
	}
	render(t, res)
}

func TestFig6Table3Shape(t *testing.T) {
	r, err := Run("fig6", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig6Result)
	if len(res.Table) != 12 {
		t.Fatalf("table rows = %d, want 12", len(res.Table))
	}
	for _, row := range res.Table {
		if row.PaperMedian == 0 {
			t.Errorf("row %s/%s missing paper value", row.Mode, row.Tool)
		}
		rel := math.Abs(row.Median-row.PaperMedian) / row.PaperMedian
		if rel > 0.10 {
			t.Errorf("%s %s: median %v deviates %.0f%% from paper %v",
				row.Mode, row.Tool, row.Median, rel*100, row.PaperMedian)
		}
	}
	render(t, res)
}

func TestANOVAShape(t *testing.T) {
	r, err := Run("anova", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*ANOVAResult)
	sig := map[string]bool{}
	for _, s := range res.Significant {
		sig[s] = true
	}
	for _, want := range []string{"processor", "infrastructure", "pattern", "registers"} {
		if !sig[want] {
			t.Errorf("factor %s not significant; table:\n%s", want, res.Table)
		}
	}
	for _, s := range res.Insignificant {
		if s != "optlevel" {
			t.Errorf("unexpected insignificant factor %s", s)
		}
	}
	if len(res.Insignificant) != 1 {
		t.Errorf("insignificant = %v, want [optlevel]", res.Insignificant)
	}
	render(t, res)
}

func TestFig7Shape(t *testing.T) {
	r, err := Run("fig7", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig7Result)
	if len(res.Slopes) != 18 { // 6 stacks x 3 processors
		t.Fatalf("slopes = %d", len(res.Slopes))
	}
	bySP := map[string]float64{}
	for _, s := range res.Slopes {
		if s.Slope <= 0 {
			t.Errorf("%s/%s: slope %v not positive", s.Infra, s.Processor, s.Slope)
		}
		if s.Slope > 0.004 {
			t.Errorf("%s/%s: slope %v above paper range (~0.003 max)", s.Infra, s.Processor, s.Slope)
		}
		bySP[s.Infra+"/"+s.Processor] = s.Slope
	}
	// The API level must not change the slope (the paper: "the error
	// does not depend on whether we use the high level or low level
	// infrastructure"). Allow sampling tolerance.
	for _, proc := range []string{"PD", "CD", "K8"} {
		for _, backend := range []string{"pm", "pc"} {
			d := bySP[backend+"/"+proc]
			for _, lvl := range []string{"PL", "PH"} {
				o := bySP[lvl+backend+"/"+proc]
				if d == 0 || math.Abs(o-d)/d > 0.35 {
					t.Errorf("%s%s/%s slope %v deviates from direct %v", lvl, backend, proc, o, d)
				}
			}
		}
	}
	// Paper anchors.
	if s := bySP["pc/CD"]; s < 0.0016 || s > 0.0026 {
		t.Errorf("pc/CD slope = %v, want ~0.00204", s)
	}
	if s := bySP["pm/K8"]; s < 0.0007 || s > 0.0014 {
		t.Errorf("pm/K8 slope = %v, want ~0.001", s)
	}
	render(t, res)
}

func TestFig8Shape(t *testing.T) {
	r, err := Run("fig8", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig8Result)
	if res.MaxAbsSlope > 1e-5 {
		t.Errorf("user-mode slopes too large: %v (paper: ~4e-6 max)", res.MaxAbsSlope)
	}
	neg, pos := 0, 0
	for _, s := range res.Slopes {
		if s.Slope < 0 {
			neg++
		} else {
			pos++
		}
	}
	if neg == 0 || pos == 0 {
		t.Errorf("paper shows both signs; got %d negative, %d positive", neg, pos)
	}
	render(t, res)
}

func TestFig9Shape(t *testing.T) {
	r, err := Run("fig9", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig9Result)
	if res.Slope < 0.0016 || res.Slope > 0.0026 {
		t.Errorf("fig9 slope = %v, want ~0.00204", res.Slope)
	}
	// Averages grow with loop size: last > first.
	if res.Averages[len(res.Averages)-1] <= res.Averages[0] {
		t.Errorf("averages not increasing: %v", res.Averages)
	}
	// Paper anchors: ~1500 at 500k, ~2500 at 1M (tolerate ±40%).
	for i, l := range res.LoopSizes {
		switch l {
		case 500_000:
			if a := res.Averages[i]; a < 900 || a > 2100 {
				t.Errorf("avg at 500k = %v, want ~1500", a)
			}
		case 1_000_000:
			if a := res.Averages[i]; a < 1500 || a > 3500 {
				t.Errorf("avg at 1M = %v, want ~2500", a)
			}
		}
	}
	render(t, res)
}

func TestFig10Shape(t *testing.T) {
	r, err := Run("fig10", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig10Result)
	// PD spreads over [~1.5, ~4] cycles/iteration; CD and K8 are
	// narrower.
	pd := res.CyclesPerIterRange["PD"]
	if pd[0] > 1.7 || pd[1] < 3.0 {
		t.Errorf("PD cycles/iter range = %v, want wide (~1.5..4)", pd)
	}
	k8 := res.CyclesPerIterRange["K8"]
	if k8[0] < 1.9 || k8[1] > 3.2 {
		t.Errorf("K8 cycles/iter range = %v, want within [2,3]", k8)
	}
	render(t, res)
}

func TestFig11Bimodality(t *testing.T) {
	r, err := Run("fig11", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig11Result)
	has2, has3 := false, false
	for _, g := range res.GroupSlopes {
		if g >= 1.9 && g <= 2.3 {
			has2 = true
		}
		if g >= 2.9 && g <= 3.3 {
			has3 = true
		}
		if g < 1.9 || g > 3.3 {
			t.Errorf("unexpected cycles/iter group %v", g)
		}
	}
	if !has2 || !has3 {
		t.Errorf("bimodality missing: groups = %v (want ~2 and ~3)", res.GroupSlopes)
	}
	render(t, res)
}

func TestFig12CellsAreLines(t *testing.T) {
	r, err := Run("fig12", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig12Result)
	if len(res.Cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(res.Cells))
	}
	slopes := map[string][]float64{}
	for _, c := range res.Cells {
		if c.R2 < 0.999 {
			t.Errorf("%s %s: R2 = %v, cells must form clean lines", c.Pattern, c.Opt, c.R2)
		}
		slopes[c.Pattern] = append(slopes[c.Pattern], c.Slope)
	}
	// Neither pattern nor opt alone determines the slope: at least one
	// pattern must have cells with different slopes across opt levels.
	varies := false
	for _, ss := range slopes {
		for _, s := range ss[1:] {
			if math.Abs(s-ss[0]) > 0.5 {
				varies = true
			}
		}
	}
	if !varies {
		t.Error("slopes identical within every pattern; placement effect missing")
	}
	render(t, res)
}

func TestGuidelinesShape(t *testing.T) {
	r, err := Run("guidelines", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*GuidelinesResult)
	if res.GovernorCV["ondemand"] <= res.GovernorCV["performance"]*2 {
		t.Errorf("ondemand CV %v should far exceed performance CV %v",
			res.GovernorCV["ondemand"], res.GovernorCV["performance"])
	}
	if math.Abs(res.CalibratedError) >= math.Abs(res.RawError) {
		t.Errorf("calibration did not reduce error: raw=%v calibrated=%v",
			res.RawError, res.CalibratedError)
	}
	if math.Abs(res.CalibratedError) > 6 {
		t.Errorf("calibrated error = %v, want near 0", res.CalibratedError)
	}
	render(t, res)
}

func TestWholeProcessShape(t *testing.T) {
	r, err := Run("wholeprocess", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*WholeProcessResult)
	if res.ErrorPercent < 60_000 {
		t.Errorf("whole-process error = %v%%, paper reports >60000%%", res.ErrorPercent)
	}
	render(t, res)
}

func TestFig1Shape(t *testing.T) {
	cfg := Config{Runs: 2, Seed: 2008}
	r, err := Run("fig1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig1Result)
	if res.Measurements != len(res.User)+len(res.UserKernel) {
		t.Error("measurement count inconsistent")
	}
	// Shape anchors from the paper's Figure 1: minimum near zero, a
	// substantial fraction of user configurations above 1000
	// instructions, and user+kernel outliers beyond 10000.
	var maxUK int64
	for _, e := range res.UserKernel {
		if e > maxUK {
			maxUK = e
		}
	}
	if maxUK < 4000 {
		t.Errorf("user+kernel max = %d, want heavy tail", maxUK)
	}
	over1000 := 0
	for _, e := range res.User {
		if e > 1000 {
			over1000++
		}
	}
	if float64(over1000)/float64(len(res.User)) < 0.05 {
		t.Errorf("only %d/%d user errors above 1000; tail too light", over1000, len(res.User))
	}
	render(t, res)
}

func TestFullScaleCellCount(t *testing.T) {
	// At the published configuration the Figure 1 sweep must cover at
	// least the paper's "over 170000 measurements" per figure (both
	// violins together).
	cells := len(fig1Cells())
	total := cells * 2 * DefaultConfig.Runs
	if total < 170_000 {
		t.Errorf("full-scale fig1 = %d measurements, want >= 170000", total)
	}
}
