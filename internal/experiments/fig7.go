package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// fig7LoopSizes are the loop iteration counts used for the duration
// study (the paper sweeps up to one million iterations).
var fig7LoopSizes = []int64{10_000, 100_000, 250_000, 500_000, 1_000_000}

// SlopeCell is the error-growth slope for one (infrastructure,
// processor) combination: extra instructions per loop iteration.
type SlopeCell struct {
	Infra     string  `json:"infra"`
	Processor string  `json:"processor"`
	Slope     float64 `json:"slope"`
	R2        float64 `json:"r2"`
}

// Fig7Result reproduces Figure 7: the slope of the regression of the
// user+kernel instruction error on the loop iteration count, per
// infrastructure and processor. All slopes are positive: the longer the
// measurement, the more timer-interrupt instructions it accumulates.
type Fig7Result struct {
	Mode   string      `json:"mode"`
	Slopes []SlopeCell `json:"slopes"`
}

// ID implements Result.
func (r *Fig7Result) ID() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render(w io.Writer) error {
	var bars []textplot.Bar
	for _, s := range r.Slopes {
		bars = append(bars, textplot.Bar{
			Label: fmt.Sprintf("%-4s %s", s.Infra, s.Processor),
			Value: s.Slope,
		})
	}
	_, err := fmt.Fprint(w, textplot.Bars(
		fmt.Sprintf("Extra instructions per loop iteration (%s mode)", r.Mode),
		bars, func(v float64) string { return fmt.Sprintf("%+.6f", v) }))
	return err
}

// slopeStudy regresses the measurement error on the loop size for every
// (stack, processor) cell in the given mode. Interrupt arrivals are
// Poisson-thin at these durations, so the study takes several times the
// configured repetitions to stabilize the slope estimates.
func slopeStudy(cfg Config, mode core.MeasureMode, salt uint64) ([]SlopeCell, error) {
	runs := cfg.Runs * 4
	var out []SlopeCell
	for _, code := range stack.Codes {
		for _, m := range cpu.AllModels {
			sys, err := newSystem(m, code, stack.DefaultOptions)
			if err != nil {
				return nil, err
			}
			var xs, ys []float64
			for _, l := range fig7LoopSizes {
				for _, pat := range []core.Pattern{core.StartRead, core.StartStop} {
					for _, opt := range compiler.AllOptLevels {
						errs, err := sys.MeasureN(core.Request{
							Bench:   core.LoopBenchmark(l),
							Pattern: pat,
							Mode:    mode,
							Opt:     opt,
						}, runs, cellSeed(cfg, salt, hash(code), hash(m.Tag), uint64(l), uint64(pat), uint64(opt)))
						if err != nil {
							return nil, err
						}
						for _, e := range errs {
							xs = append(xs, float64(l))
							ys = append(ys, float64(e))
						}
					}
				}
			}
			fit, err := stats.LinearFit(xs, ys)
			if err != nil {
				return nil, err
			}
			out = append(out, SlopeCell{Infra: code, Processor: m.Tag, Slope: fit.Slope, R2: fit.R2})
		}
	}
	return out, nil
}

func runFig7(cfg Config) (Result, error) {
	slopes, err := slopeStudy(cfg, core.ModeUserKernel, 7)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Mode: core.ModeUserKernel.String(), Slopes: slopes}, nil
}

// Fig8Result reproduces Figure 8: the same regression in user mode. The
// slopes are several orders of magnitude smaller — a few millionths of
// an instruction per iteration, some negative — caused only by the
// per-interrupt counter save/restore rounding.
type Fig8Result struct {
	Mode   string      `json:"mode"`
	Slopes []SlopeCell `json:"slopes"`
	// MaxAbsSlope is the largest |slope| (paper: ~4e-6).
	MaxAbsSlope float64 `json:"max_abs_slope"`
}

// ID implements Result.
func (r *Fig8Result) ID() string { return "fig8" }

// Render implements Result.
func (r *Fig8Result) Render(w io.Writer) error {
	var bars []textplot.Bar
	for _, s := range r.Slopes {
		bars = append(bars, textplot.Bar{
			Label: fmt.Sprintf("%-4s %s", s.Infra, s.Processor),
			Value: s.Slope,
		})
	}
	if _, err := fmt.Fprint(w, textplot.Bars(
		"Extra instructions per loop iteration (user mode)",
		bars, func(v float64) string { return fmt.Sprintf("%+.7f", v) })); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmax |slope| = %.2g instructions/iteration (paper: ~4e-6; several orders below user+kernel)\n", r.MaxAbsSlope)
	return nil
}

func runFig8(cfg Config) (Result, error) {
	slopes, err := slopeStudy(cfg, core.ModeUser, 8)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Mode: core.ModeUser.String(), Slopes: slopes}
	for _, s := range slopes {
		if a := abs(s.Slope); a > res.MaxAbsSlope {
			res.MaxAbsSlope = a
		}
	}
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
