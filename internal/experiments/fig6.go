package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// table3Patterns is the paper's Table 3 pattern selection: the readout
// pattern reported for each stack.
var table3Patterns = map[string]core.Pattern{
	"pm":   core.ReadRead,
	"PLpm": core.StartRead,
	"PHpm": core.StartRead,
	"pc":   core.StartRead,
	"PLpc": core.StartRead,
	"PHpc": core.StartRead,
}

// Table3Row is one line of the paper's Table 3.
type Table3Row struct {
	Mode    string  `json:"mode"`
	Tool    string  `json:"tool"`
	Pattern string  `json:"pattern"`
	Median  float64 `json:"median"`
	Min     int64   `json:"min"`
	// PaperMedian and PaperMin are the published values for comparison.
	PaperMedian float64 `json:"paper_median"`
	PaperMin    int64   `json:"paper_min"`
}

// paperTable3 holds the published medians and minima.
var paperTable3 = map[string][2]float64{
	"user+kernel/pm":   {726, 572},
	"user+kernel/PLpm": {742, 653},
	"user+kernel/PHpm": {844, 755},
	"user+kernel/pc":   {163, 74},
	"user+kernel/PLpc": {251, 249},
	"user+kernel/PHpc": {339, 333},
	"user/pm":          {37, 36},
	"user/PLpm":        {134, 134},
	"user/PHpm":        {236, 236},
	"user/pc":          {67, 56},
	"user/PLpc":        {152, 144},
	"user/PHpc":        {236, 230},
}

// Fig6Result reproduces Figure 6 and Table 3: the error per
// infrastructure at its reported pattern, one counter register, TSC
// enabled, pooled over processors and optimization levels.
type Fig6Result struct {
	// Samples[mode][stack] holds the pooled error samples.
	Samples map[string]map[string][]int64 `json:"samples"`
	Table   []Table3Row                   `json:"table"`
}

// ID implements Result.
func (r *Fig6Result) ID() string { return "fig6" }

// Render implements Result.
func (r *Fig6Result) Render(w io.Writer) error {
	for _, mode := range []string{"user+kernel", "user"} {
		var rows []textplot.BoxRow
		for _, code := range stack.Codes {
			rows = append(rows, textplot.BoxRow{Label: code, Data: stats.Float64s(r.Samples[mode][code])})
		}
		fmt.Fprint(w, textplot.Boxes(fmt.Sprintf("%s, # of instructions", mode), rows))
		fmt.Fprintln(w)
	}

	var tab [][]string
	for _, row := range r.Table {
		tab = append(tab, []string{
			row.Mode, row.Tool, row.Pattern,
			fmt.Sprintf("%.1f", row.Median), fmt.Sprintf("%d", row.Min),
			fmt.Sprintf("%.0f", row.PaperMedian), fmt.Sprintf("%.0f", float64(row.PaperMin)),
		})
	}
	_, err := fmt.Fprint(w, textplot.Table(
		[]string{"Mode", "Tool", "Best Pattern", "Median", "Min", "Paper Med", "Paper Min"}, tab))
	return err
}

func runFig6(cfg Config) (Result, error) {
	res := &Fig6Result{Samples: map[string]map[string][]int64{}}
	for _, mode := range []core.MeasureMode{core.ModeUserKernel, core.ModeUser} {
		res.Samples[mode.String()] = map[string][]int64{}
		for _, code := range stack.Codes {
			pat := table3Patterns[code]
			var all []int64
			for _, m := range cpu.AllModels {
				sys, err := newSystem(m, code, stack.DefaultOptions)
				if err != nil {
					return nil, err
				}
				for _, opt := range compiler.AllOptLevels {
					errs, err := sys.MeasureN(core.Request{
						Bench:   core.NullBenchmark(),
						Pattern: pat,
						Mode:    mode,
						Opt:     opt,
					}, cfg.Runs, cellSeed(cfg, 6, uint64(mode), hash(code), uint64(opt), hash(m.Tag)))
					if err != nil {
						return nil, err
					}
					all = append(all, errs...)
				}
			}
			res.Samples[mode.String()][code] = all
			paper := paperTable3[mode.String()+"/"+code]
			res.Table = append(res.Table, Table3Row{
				Mode: mode.String(), Tool: code, Pattern: pat.String(),
				Median: medianOf(all), Min: minOf(all),
				PaperMedian: paper[0], PaperMin: int64(paper[1]),
			})
		}
	}
	return res, nil
}

// hash folds a short string into a seed component.
func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
