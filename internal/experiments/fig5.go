package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/textplot"
)

// Fig5Result reproduces Figure 5: how the measurement error depends on
// the number of counter registers, on the K8, for perfmon and perfctr
// in both modes.
type Fig5Result struct {
	// Medians[infra][mode][pattern][regs-1] is the median error.
	Medians map[string]map[string]map[string][]float64 `json:"medians"`
	// PerRegisterRR summarizes the paper's headline: the additional
	// error per extra register under read-read in user+kernel mode.
	PerRegisterRR map[string]float64 `json:"per_register_rr"`
}

// ID implements Result.
func (r *Fig5Result) ID() string { return "fig5" }

// Render implements Result.
func (r *Fig5Result) Render(w io.Writer) error {
	for _, infra := range []string{"pm", "pc"} {
		for _, mode := range []string{"user+kernel", "user"} {
			fmt.Fprintf(w, "K8, %s, %s (median error by number of registers)\n", infra, mode)
			var rows [][]string
			for _, pat := range core.AllPatterns {
				meds := r.Medians[infra][mode][pat.String()]
				row := []string{pat.String()}
				for _, m := range meds {
					row = append(row, fmt.Sprintf("%.1f", m))
				}
				rows = append(rows, row)
			}
			_, err := fmt.Fprint(w, textplot.Table([]string{"pattern", "1 reg", "2 regs", "3 regs", "4 regs"}, rows))
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "read-read user+kernel cost per additional register: pm = %.1f (paper ~112), pc = %.1f (paper ~13)\n",
		r.PerRegisterRR["pm"], r.PerRegisterRR["pc"])
	return nil
}

func runFig5(cfg Config) (Result, error) {
	res := &Fig5Result{
		Medians:       map[string]map[string]map[string][]float64{},
		PerRegisterRR: map[string]float64{},
	}
	for _, infra := range []string{"pm", "pc"} {
		res.Medians[infra] = map[string]map[string][]float64{}
		sys, err := newSystem(cpu.Athlon64X2, infra, stack.DefaultOptions)
		if err != nil {
			return nil, err
		}
		for _, mode := range []core.MeasureMode{core.ModeUserKernel, core.ModeUser} {
			res.Medians[infra][mode.String()] = map[string][]float64{}
			for _, pat := range core.AllPatterns {
				var meds []float64
				for _, regs := range regCounts(cpu.Athlon64X2) {
					var all []int64
					for _, opt := range compiler.AllOptLevels {
						errs, err := sys.MeasureN(core.Request{
							Bench:   core.NullBenchmark(),
							Pattern: pat,
							Mode:    mode,
							Events:  instrEvents(regs),
							Opt:     opt,
						}, cfg.Runs, cellSeed(cfg, 5, uint64(pat), uint64(opt), uint64(regs)))
						if err != nil {
							return nil, err
						}
						all = append(all, errs...)
					}
					meds = append(meds, medianOf(all))
				}
				res.Medians[infra][mode.String()][pat.String()] = meds
			}
		}
		rr := res.Medians[infra][core.ModeUserKernel.String()][core.ReadRead.String()]
		if len(rr) >= 4 {
			res.PerRegisterRR[infra] = (rr[3] - rr[0]) / 3
		}
	}
	return res, nil
}
