package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/stack"
	"repro/internal/stats"
)

// GuidelinesResult quantifies the Section 8 guidelines:
//
//   - frequency scaling: cycle measurements of the same workload under
//     the pinned "performance" governor versus the wandering "ondemand"
//     governor;
//   - calibration: subtracting the null-benchmark error from a
//     measurement removes most of the fixed access cost.
type GuidelinesResult struct {
	// GovernorCV is the coefficient of variation of repeated cycle
	// measurements per governor.
	GovernorCV map[string]float64 `json:"governor_cv"`
	// RawError and CalibratedError are the loop measurement error
	// before and after subtracting the median null error.
	RawError        float64 `json:"raw_error"`
	CalibratedError float64 `json:"calibrated_error"`
}

// ID implements Result.
func (r *GuidelinesResult) ID() string { return "guidelines" }

// Render implements Result.
func (r *GuidelinesResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Guideline: pin the CPU frequency")
	for _, g := range []string{"performance", "ondemand"} {
		fmt.Fprintf(w, "  %-12s cycle-count coefficient of variation = %.4f\n", g, r.GovernorCV[g])
	}
	fmt.Fprintln(w, "\nGuideline: calibrate with the null benchmark")
	fmt.Fprintf(w, "  raw loop error        = %+.1f instructions\n", r.RawError)
	fmt.Fprintf(w, "  after calibration     = %+.1f instructions\n", r.CalibratedError)
	return nil
}

func runGuidelines(cfg Config) (Result, error) {
	res := &GuidelinesResult{GovernorCV: map[string]float64{}}

	// Frequency scaling: repeated cycle measurements of the same loop.
	for _, gov := range []kernel.Governor{kernel.Performance, kernel.Ondemand} {
		sys, err := newSystem(cpu.Core2Duo, "pc", stack.Options{WithTSC: true, Governor: gov})
		if err != nil {
			return nil, err
		}
		var cycles []float64
		for i := 0; i < cfg.Runs*4; i++ {
			m, err := sys.Measure(core.Request{
				Bench:   core.ArrayBenchmark(1_000_000),
				Pattern: core.StartRead,
				Mode:    core.ModeUserKernel,
				Events:  []cpu.Event{cpu.EventCoreCycles},
				Opt:     compiler.O2,
				Seed:    cellSeed(cfg, 80, uint64(gov), uint64(i)),
			})
			if err != nil {
				return nil, err
			}
			cycles = append(cycles, float64(m.Deltas[0]))
		}
		cv := 0.0
		if mean := stats.Mean(cycles); mean > 0 {
			cv = stats.StdDev(cycles) / mean
		}
		res.GovernorCV[gov.String()] = cv
	}

	// Calibration: median null error subtracted from a loop measurement.
	sys, err := newSystem(cpu.Athlon64X2, "pc", stack.DefaultOptions)
	if err != nil {
		return nil, err
	}
	nullErrs, err := sys.MeasureN(core.Request{
		Bench: core.NullBenchmark(), Pattern: core.StartRead,
		Mode: core.ModeUser, Opt: compiler.O2,
	}, cfg.Runs*4, cellSeed(cfg, 81))
	if err != nil {
		return nil, err
	}
	nullMed := medianOf(nullErrs)

	loopErrs, err := sys.MeasureN(core.Request{
		Bench: core.LoopBenchmark(1000), Pattern: core.StartRead,
		Mode: core.ModeUser, Opt: compiler.O2,
	}, cfg.Runs*4, cellSeed(cfg, 82))
	if err != nil {
		return nil, err
	}
	res.RawError = medianOf(loopErrs)
	res.CalibratedError = res.RawError - nullMed
	return res, nil
}

// WholeProcessResult reproduces the Section 9 discussion of standalone
// measurement tools (perfex, pfmon, papiex): measuring a tiny benchmark
// as a whole process includes loader and teardown instructions, giving
// errors of tens of thousands of percent.
type WholeProcessResult struct {
	BenchInstr    int64   `json:"bench_instr"`
	MeasuredInstr int64   `json:"measured_instr"`
	ErrorPercent  float64 `json:"error_percent"`
}

// ID implements Result.
func (r *WholeProcessResult) ID() string { return "wholeprocess" }

// Render implements Result.
func (r *WholeProcessResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "benchmark instructions:        %d\n", r.BenchInstr)
	fmt.Fprintf(w, "whole-process measurement:     %d\n", r.MeasuredInstr)
	fmt.Fprintf(w, "error: %.0f%% (paper: over 60000%% in some cases)\n", r.ErrorPercent)
	return nil
}

func runWholeProcess(cfg Config) (Result, error) {
	sys, err := newSystem(cpu.Athlon64X2, "pc", stack.DefaultOptions)
	if err != nil {
		return nil, err
	}
	bench := core.LoopBenchmark(1000)
	m, err := sys.Measure(core.Request{
		Bench: bench, Pattern: core.StartRead,
		Mode: core.ModeUserKernel, Opt: compiler.O2,
		Seed: cellSeed(cfg, 90),
	})
	if err != nil {
		return nil, err
	}
	// A standalone tool starts the counters before exec and reads them
	// after exit: process startup and teardown are inside the window.
	measured := m.Deltas[0] + sys.Kernel.ProcessStartupCost()
	res := &WholeProcessResult{
		BenchInstr:    bench.ExpectedInstr,
		MeasuredInstr: measured,
		ErrorPercent:  100 * float64(measured-bench.ExpectedInstr) / float64(bench.ExpectedInstr),
	}
	return res, nil
}
