// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from a Config to a
// structured result that can render itself as text (via
// internal/textplot) and serialize to JSON; the per-experiment bench
// targets in the repository root regenerate the published artifacts.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-versus-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/xrand"
)

// Config scales an experiment run.
type Config struct {
	// Runs is the number of repetitions per configuration cell. The
	// published results use the DefaultConfig; tests shrink it.
	Runs int
	// Seed individualizes the whole experiment deterministically.
	Seed uint64
}

// DefaultConfig reproduces the paper-scale runs.
var DefaultConfig = Config{Runs: 72, Seed: 2008}

// QuickConfig is a fast configuration for tests and smoke runs.
var QuickConfig = Config{Runs: 6, Seed: 2008}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = DefaultConfig.Runs
	}
	if c.Seed == 0 {
		c.Seed = DefaultConfig.Seed
	}
	return c
}

// Result is a rendered experiment outcome.
type Result interface {
	// ID returns the experiment identifier ("fig1", "table3", ...).
	ID() string
	// Render writes the human-readable form.
	Render(w io.Writer) error
}

// Runner executes a named experiment.
type Runner func(Config) (Result, error)

// registry maps experiment IDs to runners, in presentation order.
var registry = []struct {
	id     string
	title  string
	runner Runner
}{
	{"table1", "Table 1: processors used in this study", runTable1},
	{"table2", "Table 2: counter access patterns", runTable2},
	{"fig1", "Figure 1: overall measurement error (violin plots)", runFig1},
	{"fig4", "Figure 4: using TSC reduces error on perfctr (CD)", runFig4},
	{"fig5", "Figure 5: error depends on number of counters (K8)", runFig5},
	{"fig6", "Figure 6 + Table 3: error depends on infrastructure", runFig6},
	{"anova", "Section 4.3: n-way ANOVA of error factors", runANOVA},
	{"fig7", "Figure 7: user+kernel mode error slopes", runFig7},
	{"fig8", "Figure 8: user mode error slopes", runFig8},
	{"fig9", "Figure 9: kernel mode instructions by loop size (pc on CD)", runFig9},
	{"fig10", "Figure 10: cycles by loop size", runFig10},
	{"fig11", "Figure 11: cycles by loop size with pm on K8", runFig11},
	{"fig12", "Figure 12: cycles by pattern and optimization level", runFig12},
	{"guidelines", "Section 8: frequency scaling and calibration guidelines", runGuidelines},
	{"wholeprocess", "Section 9: whole-process measurement tools (perfex-style error)", runWholeProcess},
	{"sampling", "Extension: counting vs sampling accuracy (Moore, Section 9)", runSampling},
	{"multiplex", "Extension: counter multiplexing accuracy (Mytkowicz et al., Section 9)", runMultiplex},
	{"events", "Extension: placement sensitivity of event counts (Section 7 future work)", runEvents},
	{"calibration", "Extension: null-benchmark vs null-probe calibration (Najafzadeh, Section 9)", runCalibration},
}

// IDs returns all experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// Title returns the human-readable experiment title.
func Title(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.title
		}
	}
	return ""
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Result, error) {
	for _, e := range registry {
		if e.id == id {
			return e.runner(cfg.withDefaults())
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// --- shared helpers ---

// newSystem builds a measurement system or panics; experiment code paths
// construct only known-valid configurations, and a construction failure
// is a programming error surfaced during tests.
func newSystem(m *cpu.Model, code string, opts stack.Options) (*stack.System, error) {
	return stack.New(m, code, opts)
}

// patternsFor returns the patterns supported by a stack code, in the
// paper's order.
func patternsFor(code string) []core.Pattern {
	if code[0] == 'P' && code[1] == 'H' {
		return []core.Pattern{core.StartRead, core.StartStop}
	}
	return core.AllPatterns
}

// regCounts returns the register counts swept for a model: 1 up to
// min(4, programmable), matching the paper's Figure 5 axis.
func regCounts(m *cpu.Model) []int {
	max := m.NumProgrammable
	if max > 4 {
		max = 4
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// instrEvents returns n retired-instruction event requests.
func instrEvents(n int) []cpu.Event {
	evs := make([]cpu.Event, n)
	for i := range evs {
		evs[i] = cpu.EventInstrRetired
	}
	return evs
}

// cellSeed derives a reproducible seed for one configuration cell.
func cellSeed(cfg Config, parts ...uint64) uint64 {
	return xrand.Mix(append([]uint64{cfg.Seed}, parts...)...)
}

// medianOf is a convenience for integer observations.
func medianOf(xs []int64) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

// minOf returns the smallest observation (0 for empty).
func minOf(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
