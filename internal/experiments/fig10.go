package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// fig10LoopSizes mirrors the x-axis of Figures 10-12.
var fig10LoopSizes = []int64{1, 50_000, 100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000}

// CyclePoint is one cycle measurement at a loop size.
type CyclePoint struct {
	LoopSize int64   `json:"loop_size"`
	Cycles   float64 `json:"cycles"`
	Pattern  string  `json:"pattern"`
	Opt      string  `json:"opt"`
}

// Fig10Result reproduces Figure 10: measured user+kernel cycle counts
// by loop size for all processors on perfctr and perfmon. For a given
// loop size the measurements vary greatly — the placement effect.
type Fig10Result struct {
	// Points[proc][infra] holds the scatter.
	Points map[string]map[string][]CyclePoint `json:"points"`
	// CyclesPerIterRange[proc] is the [min, max] observed slope.
	CyclesPerIterRange map[string][2]float64 `json:"cycles_per_iter_range"`
}

// ID implements Result.
func (r *Fig10Result) ID() string { return "fig10" }

// Render implements Result.
func (r *Fig10Result) Render(w io.Writer) error {
	for _, proc := range []string{"K8", "PD", "CD"} {
		for _, infra := range []string{"pm", "pc"} {
			pts := r.Points[proc][infra]
			var sp []textplot.Point
			for _, p := range pts {
				sp = append(sp, textplot.Point{X: float64(p.LoopSize), Y: p.Cycles})
			}
			fmt.Fprint(w, textplot.Scatter(fmt.Sprintf("%s / %s: cycles by loop size", proc, infra), sp, 14))
			fmt.Fprintln(w)
		}
		rng := r.CyclesPerIterRange[proc]
		fmt.Fprintf(w, "%s: observed cycles/iteration in [%.2f, %.2f]\n\n", proc, rng[0], rng[1])
	}
	return nil
}

// cycleScatter measures cycle counts across loop sizes, patterns, and
// optimization levels for one (model, infra).
func cycleScatter(cfg Config, m *cpu.Model, infra string, salt uint64) ([]CyclePoint, error) {
	sys, err := newSystem(m, infra, stack.DefaultOptions)
	if err != nil {
		return nil, err
	}
	var pts []CyclePoint
	for _, pat := range core.AllPatterns {
		for _, opt := range compiler.AllOptLevels {
			for _, l := range fig10LoopSizes {
				meas, err := sys.Measure(core.Request{
					Bench:   core.LoopBenchmark(l),
					Pattern: pat,
					Mode:    core.ModeUserKernel,
					Events:  []cpu.Event{cpu.EventCoreCycles},
					Opt:     opt,
					Seed:    cellSeed(cfg, salt, hash(m.Tag), hash(infra), uint64(pat), uint64(opt), uint64(l)),
				})
				if err != nil {
					return nil, err
				}
				pts = append(pts, CyclePoint{
					LoopSize: l, Cycles: float64(meas.Deltas[0]),
					Pattern: pat.String(), Opt: opt.String(),
				})
			}
		}
	}
	return pts, nil
}

func runFig10(cfg Config) (Result, error) {
	res := &Fig10Result{
		Points:             map[string]map[string][]CyclePoint{},
		CyclesPerIterRange: map[string][2]float64{},
	}
	for _, m := range cpu.AllModels {
		res.Points[m.Tag] = map[string][]CyclePoint{}
		lo, hi := 1e18, 0.0
		for _, infra := range []string{"pm", "pc"} {
			pts, err := cycleScatter(cfg, m, infra, 10)
			if err != nil {
				return nil, err
			}
			res.Points[m.Tag][infra] = pts
			for _, p := range pts {
				if p.LoopSize < 100_000 {
					continue // slope estimates need long loops
				}
				cpi := p.Cycles / float64(p.LoopSize)
				if cpi < lo {
					lo = cpi
				}
				if cpi > hi {
					hi = cpi
				}
			}
		}
		res.CyclesPerIterRange[m.Tag] = [2]float64{lo, hi}
	}
	return res, nil
}

// Fig11Result reproduces Figure 11: on the K8 with perfmon, cycle
// measurements split into two groups bounded below by c = 2*l and
// c = 3*l.
type Fig11Result struct {
	Points []CyclePoint `json:"points"`
	// GroupSlopes are the distinct cycles/iteration values observed.
	GroupSlopes []float64 `json:"group_slopes"`
}

// ID implements Result.
func (r *Fig11Result) ID() string { return "fig11" }

// Render implements Result.
func (r *Fig11Result) Render(w io.Writer) error {
	var sp []textplot.Point
	for _, p := range r.Points {
		sp = append(sp, textplot.Point{X: float64(p.LoopSize), Y: p.Cycles})
	}
	fmt.Fprint(w, textplot.Scatter("K8, pm: cycles by loop size (reference lines c=2i, c=3i)", sp, 18, 2, 3))
	fmt.Fprintf(w, "\ncycles/iteration groups: %v (paper: bounded below by 2 and 3)\n", r.GroupSlopes)
	return nil
}

func runFig11(cfg Config) (Result, error) {
	pts, err := cycleScatter(cfg, cpu.Athlon64X2, "pm", 11)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Points: pts}
	groups := map[float64]bool{}
	for _, p := range pts {
		if p.LoopSize < 100_000 {
			continue
		}
		cpi := p.Cycles / float64(p.LoopSize)
		groups[float64(int(cpi*10+0.5))/10] = true
	}
	for g := range groups {
		res.GroupSlopes = append(res.GroupSlopes, g)
	}
	sort.Float64s(res.GroupSlopes)
	return res, nil
}

// Fig12Cell is one (pattern, optimization level) cell of Figure 12.
type Fig12Cell struct {
	Pattern string  `json:"pattern"`
	Opt     string  `json:"opt"`
	Slope   float64 `json:"slope"`
	R2      float64 `json:"r2"`
}

// Fig12Result reproduces Figure 12: the same K8/pm cycle data broken
// down by pattern and optimization level. Each cell forms one clean
// line — within a cell the executable (and hence the placement) is
// fixed — but neither factor alone determines the slope.
type Fig12Result struct {
	Cells []Fig12Cell `json:"cells"`
}

// ID implements Result.
func (r *Fig12Result) ID() string { return "fig12" }

// Render implements Result.
func (r *Fig12Result) Render(w io.Writer) error {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Pattern, c.Opt, fmt.Sprintf("%.3f", c.Slope), fmt.Sprintf("%.6f", c.R2),
		})
	}
	if _, err := fmt.Fprint(w, textplot.Table(
		[]string{"pattern", "opt", "cycles/iter", "R^2"}, rows)); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nEach (pattern, opt) cell is a clean line with its own slope;")
	fmt.Fprintln(w, "only the combination determines it (code placement).")
	return nil
}

func runFig12(cfg Config) (Result, error) {
	pts, err := cycleScatter(cfg, cpu.Athlon64X2, "pm", 12)
	if err != nil {
		return nil, err
	}
	byCell := map[[2]string][]CyclePoint{}
	for _, p := range pts {
		key := [2]string{p.Pattern, p.Opt}
		byCell[key] = append(byCell[key], p)
	}
	res := &Fig12Result{}
	for _, pat := range core.AllPatterns {
		for _, opt := range compiler.AllOptLevels {
			cell := byCell[[2]string{pat.String(), opt.String()}]
			var xs, ys []float64
			for _, p := range cell {
				xs = append(xs, float64(p.LoopSize))
				ys = append(ys, p.Cycles)
			}
			fit, err := stats.LinearFit(xs, ys)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig12Cell{
				Pattern: pat.String(), Opt: opt.String(),
				Slope: fit.Slope, R2: fit.R2,
			})
		}
	}
	return res, nil
}
