package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/stats"
)

// ANOVAResult reproduces the Section 4.3 factor study: an n-way
// analysis of variance with processor, measurement infrastructure,
// access pattern, compiler optimization level, and number of counter
// registers as factors and the instruction-count error as the response.
//
// The paper finds all factors but the optimization level statistically
// significant (Pr(>F) < 2e-16).
type ANOVAResult struct {
	Table *stats.AnovaTable `json:"table"`
	// Significant/Insignificant list factor names by verdict.
	Significant   []string `json:"significant"`
	Insignificant []string `json:"insignificant"`
}

// ID implements Result.
func (r *ANOVAResult) ID() string { return "anova" }

// Render implements Result.
func (r *ANOVAResult) Render(w io.Writer) error {
	if _, err := fmt.Fprint(w, r.Table.String()); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsignificant:     %v\n", r.Significant)
	fmt.Fprintf(w, "not significant: %v (paper: only the optimization level)\n", r.Insignificant)
	return nil
}

// anovaFactors names the design columns.
var anovaFactors = []string{"processor", "infrastructure", "pattern", "optlevel", "registers"}

func runANOVA(cfg Config) (Result, error) {
	// A balanced full factorial. The main-effects decomposition needs
	// balance, so the design uses the four stacks that support all four
	// patterns (the PAPI high-level API cannot express read-read or
	// read-stop) and the register counts every processor has (1, 2).
	// Including the read patterns matters: the per-register read cost
	// is what makes the register factor significant, as in the paper.
	var obs []stats.Observation
	patterns := core.AllPatterns
	regs := []int{1, 2}
	stacks := []string{"pm", "pc", "PLpm", "PLpc"}
	for _, m := range cpu.AllModels {
		for _, code := range stacks {
			sys, err := newSystem(m, code, stack.DefaultOptions)
			if err != nil {
				return nil, err
			}
			for _, pat := range patterns {
				for _, opt := range compiler.AllOptLevels {
					for _, nr := range regs {
						errs, err := sys.MeasureN(core.Request{
							Bench:   core.NullBenchmark(),
							Pattern: pat,
							Mode:    core.ModeUserKernel,
							Events:  instrEvents(nr),
							Opt:     opt,
						}, cfg.Runs, cellSeed(cfg, 43, hash(m.Tag), hash(code), uint64(pat), uint64(opt), uint64(nr)))
						if err != nil {
							return nil, err
						}
						for _, e := range errs {
							obs = append(obs, stats.Observation{
								Levels: []string{m.Tag, code, pat.Code(), opt.String(), fmt.Sprintf("%d", nr)},
								Y:      float64(e),
							})
						}
					}
				}
			}
		}
	}
	table, err := stats.ANOVA(anovaFactors, obs)
	if err != nil {
		return nil, err
	}
	res := &ANOVAResult{Table: table}
	for _, f := range table.Factors {
		if f.Significant {
			res.Significant = append(res.Significant, f.Name)
		} else {
			res.Insignificant = append(res.Insignificant, f.Name)
		}
	}
	return res, nil
}
