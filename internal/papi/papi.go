// Package papi models PAPI (the Performance API), the portable layer
// most performance analysts use instead of programming perfctr or
// perfmon2 directly (Section 2.4).
//
// PAPI contributes three things to the study's measurement stacks:
//
//   - portability: preset events (PAPI_TOT_INS, PAPI_TOT_CYC, ...) are
//     mapped onto processor-specific native events via per-substrate
//     preset tables;
//   - a low-level API — richer, explicit event sets, one wrapper layer
//     of user instructions around every backend call; and
//   - a high-level API — nearly configuration-free, another wrapper
//     layer, whose read call *implicitly resets* the counters. The
//     implicit reset is why the read-read and read-stop patterns cannot
//     be expressed at high level (Table 2 footnote).
//
// Each wrapper layer's user-mode instructions land inside the
// measurement window, which is why the paper finds high > low > direct
// errors consistently (Figure 6, Table 3).
package papi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
)

// Level selects the PAPI API layer.
type Level uint8

const (
	// Low is the PAPI low-level API ("PL" in the paper's stack codes).
	Low Level = iota
	// High is the PAPI high-level API ("PH").
	High
)

// String returns "low" or "high".
func (l Level) String() string {
	if l == Low {
		return "low"
	}
	return "high"
}

// Preset is a portable PAPI event name.
type Preset uint8

// The presets used in the study plus the common hardware set.
const (
	TOT_INS Preset = iota // PAPI_TOT_INS: total retired instructions
	TOT_CYC               // PAPI_TOT_CYC: total cycles
	BR_MSP                // PAPI_BR_MSP: mispredicted branches
	L1_ICM                // PAPI_L1_ICM: L1 instruction cache misses
	TLB_IM                // PAPI_TLB_IM: instruction TLB misses
	L1_DCM                // PAPI_L1_DCM: L1 data cache misses
	RES_STL               // PAPI_RES_STL: resource stalls (unavailable here)
)

// String returns the PAPI preset name.
func (p Preset) String() string {
	switch p {
	case TOT_INS:
		return "PAPI_TOT_INS"
	case TOT_CYC:
		return "PAPI_TOT_CYC"
	case BR_MSP:
		return "PAPI_BR_MSP"
	case L1_ICM:
		return "PAPI_L1_ICM"
	case TLB_IM:
		return "PAPI_TLB_IM"
	case L1_DCM:
		return "PAPI_L1_DCM"
	case RES_STL:
		return "PAPI_RES_STL"
	}
	return fmt.Sprintf("PAPI_preset(%d)", uint8(p))
}

// presetMap maps presets to the simulator's generic events; the backend
// then resolves the generic event to the processor's native encoding.
// RES_STL is deliberately absent: not every preset is available on every
// substrate, and callers must handle ErrNoPreset.
var presetMap = map[Preset]cpu.Event{
	TOT_INS: cpu.EventInstrRetired,
	TOT_CYC: cpu.EventCoreCycles,
	BR_MSP:  cpu.EventBrMispRetired,
	L1_ICM:  cpu.EventICacheMiss,
	TLB_IM:  cpu.EventITLBMiss,
	L1_DCM:  cpu.EventDCacheMiss,
}

// ErrNoPreset reports a preset with no mapping on the current substrate.
type ErrNoPreset struct{ Preset Preset }

// Error implements error.
func (e *ErrNoPreset) Error() string {
	return fmt.Sprintf("papi: preset %s not available on this substrate", e.Preset)
}

// Resolve maps a preset to the generic event counted by the simulator.
func Resolve(p Preset) (cpu.Event, error) {
	ev, ok := presetMap[p]
	if !ok {
		return cpu.EventNone, &ErrNoPreset{Preset: p}
	}
	return ev, nil
}

// wrapCost is the user-mode instruction overhead PAPI adds around one
// backend call. The component glue differs per backend (the perfctr
// component maintains more state per call), which Table 3's
// level-vs-level deltas expose: +95/+102 on perfmon, +88/+84 on perfctr.
// PerCtr is the additional per-counter bookkeeping beyond the first
// (event-set iteration, value copying); with many counters in use —
// up to 18 on the Pentium D — this dominates the user-mode error, part
// of why Figure 1's user-mode error distribution has a ~1500
// instruction interquartile range.
type wrapCost struct {
	Pre, Post int
	PerCtr    int
}

var (
	lowWrap = map[string]wrapCost{
		"pm": {Pre: 48, Post: 47, PerCtr: 20},
		"pc": {Pre: 42, Post: 42, PerCtr: 20},
	}
	highWrap = map[string]wrapCost{
		"pm": {Pre: 54, Post: 48, PerCtr: 40},
		"pc": {Pre: 42, Post: 42, PerCtr: 40},
	}
)

// PAPI is a PAPI event set bound to a backend substrate. It implements
// core.Infrastructure as the paper's PLpm/PLpc/PHpm/PHpc stacks.
type PAPI struct {
	backend core.Infrastructure
	level   Level
}

// New returns a PAPI layer over the given backend (a *perfctr.Perfctr
// or *perfmon.Perfmon context).
func New(backend core.Infrastructure, level Level) *PAPI {
	return &PAPI{backend: backend, level: level}
}

// Name returns the paper's stack code: PLpm, PLpc, PHpm, or PHpc.
func (p *PAPI) Name() string {
	prefix := "PL"
	if p.level == High {
		prefix = "PH"
	}
	return prefix + p.backend.Name()
}

// Backend returns the substrate code ("pm" or "pc").
func (p *PAPI) Backend() string { return p.backend.Backend() }

// Level returns the API layer.
func (p *PAPI) Level() Level { return p.level }

// NumCounters returns the configured counter count.
func (p *PAPI) NumCounters() int { return p.backend.NumCounters() }

// SetupPresets programs the event set from PAPI presets under a
// measurement mode — the way PAPI users express configurations.
func (p *PAPI) SetupPresets(presets []Preset, mode core.MeasureMode) error {
	specs := make([]core.CounterSpec, len(presets))
	for i, pr := range presets {
		ev, err := Resolve(pr)
		if err != nil {
			return err
		}
		specs[i] = core.Spec(ev, mode)
	}
	return p.Setup(specs)
}

// Setup programs the event set (generic-event form).
func (p *PAPI) Setup(specs []core.CounterSpec) error {
	return p.backend.Setup(specs)
}

// wrap returns this layer's per-call overhead.
func (p *PAPI) wrap() wrapCost {
	if p.level == High {
		return highWrap[p.Backend()]
	}
	return lowWrap[p.Backend()]
}

// emitWrapped surrounds a backend call with the layer's user-mode glue.
// The high-level API is implemented on the low-level one, so it pays
// both layers' overheads. Per-counter bookkeeping splits evenly across
// the pre and post sides.
func (p *PAPI) emitWrapped(b *isa.Builder, inner func(*isa.Builder)) {
	extra := 0
	if n := p.NumCounters(); n > 1 {
		extra = (n - 1) * p.wrap().PerCtr / 2
	}
	w := p.wrap()
	if p.level == High {
		lw := lowWrap[p.Backend()]
		lextra := 0
		if n := p.NumCounters(); n > 1 {
			lextra = (n - 1) * lw.PerCtr / 2
		}
		b.ALUBlock(w.Pre + extra)
		b.ALUBlock(lw.Pre + lextra)
		inner(b)
		b.ALUBlock(lw.Post + lextra)
		b.ALUBlock(w.Post + extra)
		return
	}
	b.ALUBlock(w.Pre + extra)
	inner(b)
	b.ALUBlock(w.Post + extra)
}

// EmitPrepare emits PAPI_reset+PAPI_start (low) or PAPI_start_counters
// (high).
func (p *PAPI) EmitPrepare(b *isa.Builder) {
	p.emitWrapped(b, p.backend.EmitPrepare)
}

// EmitStart emits PAPI_start without reset.
func (p *PAPI) EmitStart(b *isa.Builder) {
	p.emitWrapped(b, p.backend.EmitStart)
}

// EmitStop emits PAPI_stop / PAPI_stop_counters.
func (p *PAPI) EmitStop(b *isa.Builder) {
	p.emitWrapped(b, p.backend.EmitStop)
}

// EmitRead emits PAPI_read (low) or PAPI_read_counters (high). The
// high-level read additionally resets the counters after capturing them
// — instructions that land after the capture point and therefore
// outside the window, but which destroy the running count and rule out
// the read-read and read-stop patterns.
func (p *PAPI) EmitRead(b *isa.Builder, phase core.Phase) {
	p.emitWrapped(b, func(b *isa.Builder) {
		p.backend.EmitRead(b, phase)
		if p.level == High {
			p.backend.EmitPrepare(b) // implicit reset+restart
		}
	})
}

// SupportsReadWithoutReset reports false at high level: the implicit
// reset in PAPI_read_counters makes c1-c0 meaningless for rr/ro.
func (p *PAPI) SupportsReadWithoutReset() bool {
	return p.level == Low && p.backend.SupportsReadWithoutReset()
}

// Teardown releases the backend context.
func (p *PAPI) Teardown() { p.backend.Teardown() }
