package papi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/perfctr"
	"repro/internal/perfmon"
)

func backends(t *testing.T) map[string]core.Infrastructure {
	t.Helper()
	kpc := kernel.New(cpu.Athlon64X2)
	pc, err := perfctr.New(kpc, true)
	if err != nil {
		t.Fatal(err)
	}
	kpm := kernel.New(cpu.Athlon64X2)
	pm, err := perfmon.New(kpm)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]core.Infrastructure{"pc": pc, "pm": pm}
}

func TestStackNames(t *testing.T) {
	for name, b := range backends(t) {
		if got := New(b, Low).Name(); got != "PL"+name {
			t.Errorf("low name = %q", got)
		}
		if got := New(b, High).Name(); got != "PH"+name {
			t.Errorf("high name = %q", got)
		}
	}
}

func TestPresetResolution(t *testing.T) {
	for preset, want := range map[Preset]cpu.Event{
		TOT_INS: cpu.EventInstrRetired,
		TOT_CYC: cpu.EventCoreCycles,
		BR_MSP:  cpu.EventBrMispRetired,
		L1_ICM:  cpu.EventICacheMiss,
		TLB_IM:  cpu.EventITLBMiss,
		L1_DCM:  cpu.EventDCacheMiss,
	} {
		ev, err := Resolve(preset)
		if err != nil || ev != want {
			t.Errorf("Resolve(%s) = %v, %v; want %v", preset, ev, err, want)
		}
	}
	_, err := Resolve(RES_STL)
	var np *ErrNoPreset
	if !errors.As(err, &np) {
		t.Errorf("RES_STL should be unavailable, got %v", err)
	}
	if np.Error() == "" {
		t.Error("empty error text")
	}
}

func TestPresetNames(t *testing.T) {
	if TOT_INS.String() != "PAPI_TOT_INS" {
		t.Errorf("preset name = %q", TOT_INS)
	}
	if !strings.Contains(Preset(99).String(), "99") {
		t.Error("unknown preset must render")
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Error("level names wrong")
	}
}

func TestSetupPresets(t *testing.T) {
	b := backends(t)["pm"]
	p := New(b, Low)
	if err := p.SetupPresets([]Preset{TOT_INS, TOT_CYC}, core.ModeUserKernel); err != nil {
		t.Fatal(err)
	}
	if p.NumCounters() != 2 {
		t.Errorf("NumCounters = %d", p.NumCounters())
	}
	if err := p.SetupPresets([]Preset{RES_STL}, core.ModeUser); err == nil {
		t.Error("unavailable preset accepted")
	}
}

// TestHighLevelWrapsLowLevel: the high-level API is built on the
// low-level one, so each call pays both layers' user instructions.
func TestHighLevelWrapsLowLevel(t *testing.T) {
	for name, b := range backends(t) {
		if err := b.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true}}); err != nil {
			t.Fatal(err)
		}
		count := func(level Level) int64 {
			p := New(b, level)
			bld := isa.NewBuilder("x", 0x1000)
			p.EmitStart(bld)
			prog := bld.Emit(isa.Halt()).Build()
			return prog.StaticRetired()
		}
		direct := func() int64 {
			bld := isa.NewBuilder("x", 0x1000)
			b.EmitStart(bld)
			return bld.Emit(isa.Halt()).Build().StaticRetired()
		}()
		low, high := count(Low), count(High)
		if !(high > low && low > direct) {
			t.Errorf("%s: instruction counts high=%d low=%d direct=%d, want strict ordering", name, high, low, direct)
		}
	}
}

// TestHighLevelReadResets: PAPI_read_counters must reset the running
// counts, the reason rr/ro are unsupported (Table 2).
func TestHighLevelReadResets(t *testing.T) {
	kpm := kernel.New(cpu.Athlon64X2)
	pm, err := perfmon.New(kpm)
	if err != nil {
		t.Fatal(err)
	}
	p := New(pm, High)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true, OS: true}}); err != nil {
		t.Fatal(err)
	}
	if p.SupportsReadWithoutReset() {
		t.Fatal("high level must not support read-without-reset")
	}

	b := isa.NewBuilder("m", 0x1000)
	p.EmitPrepare(b)
	b.ALUBlock(5000)
	p.EmitRead(b, core.PhaseC0) // implicit reset afterwards
	b.ALUBlock(100)
	p.EmitRead(b, core.PhaseC1)
	b.Emit(isa.Halt())
	kpm.Core.SeedRun(4)
	if err := kpm.Core.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	var c0, c1 int64 = -1, -1
	for _, c := range kpm.Core.Captures {
		switch c.Slot {
		case 0:
			c0 = c.Value
		case 1:
			c1 = c.Value
		}
	}
	if c0 < 5000 {
		t.Errorf("c0 = %d, want > 5000", c0)
	}
	// After the implicit reset, the second read sees a small count —
	// NOT c0 + 100.
	if c1 >= c0 {
		t.Errorf("read did not reset: c0=%d c1=%d", c0, c1)
	}
}

func TestLowLevelSupportsRR(t *testing.T) {
	for _, b := range backends(t) {
		p := New(b, Low)
		if !p.SupportsReadWithoutReset() {
			t.Error("low level over a resettable backend must support rr")
		}
	}
}

func TestBackendPassthrough(t *testing.T) {
	b := backends(t)["pc"]
	p := New(b, Low)
	if p.Backend() != "pc" {
		t.Error("backend passthrough wrong")
	}
	if p.Level() != Low {
		t.Error("level accessor wrong")
	}
	p.Teardown()
	if b.NumCounters() != 0 {
		t.Error("teardown not delegated")
	}
}
