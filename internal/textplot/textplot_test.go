package textplot

import (
	"strings"
	"testing"
)

func TestBoxesRendering(t *testing.T) {
	out := Boxes("errors", []BoxRow{
		{Label: "pm", Data: []float64{700, 710, 720, 726, 730, 750, 900}},
		{Label: "pc", Data: []float64{150, 160, 163, 165, 170, 400}},
	})
	if !strings.Contains(out, "errors") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "pm |") || !strings.Contains(out, "pc |") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "M") {
		t.Error("median marker missing")
	}
	if !strings.Contains(out, "med=") {
		t.Error("median annotation missing")
	}
}

func TestBoxesEmpty(t *testing.T) {
	out := Boxes("t", []BoxRow{{Label: "x", Data: nil}})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty rendering: %q", out)
	}
}

func TestBoxesOutliers(t *testing.T) {
	out := Boxes("", []BoxRow{
		{Label: "a", Data: []float64{1, 2, 3, 4, 5, 6, 7, 8, 1000}},
	})
	if !strings.Contains(out, "o") {
		t.Errorf("outlier marker missing:\n%s", out)
	}
}

func TestViolin(t *testing.T) {
	data := make([]float64, 0, 600)
	for i := 0; i < 500; i++ {
		data = append(data, float64(i%50))
	}
	for i := 0; i < 100; i++ {
		data = append(data, 2500) // heavy tail
	}
	out := Violin("instruction error", data, 20)
	if !strings.Contains(out, "instruction error") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "|") {
		t.Error("density bars missing")
	}
	if !strings.Contains(out, "median=") {
		t.Error("summary line missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 20 {
		t.Errorf("expected >= 20 rows, got %d", len(lines))
	}
}

func TestViolinDegenerate(t *testing.T) {
	if !strings.Contains(Violin("t", nil, 10), "no data") {
		t.Error("nil data should render placeholder")
	}
	if !strings.Contains(Violin("t", []float64{1, 2}, 1), "no data") {
		t.Error("tiny row count should render placeholder")
	}
}

func TestScatter(t *testing.T) {
	var pts []Point
	for i := 1; i <= 50; i++ {
		pts = append(pts, Point{X: float64(i * 1000), Y: float64(i * 2000)})
		pts = append(pts, Point{X: float64(i * 1000), Y: float64(i * 3000)})
	}
	out := Scatter("cycles", pts, 16, 2, 3)
	if !strings.Contains(out, "*") {
		t.Error("points missing")
	}
	if !strings.Contains(out, "/") {
		t.Error("reference lines missing")
	}
}

func TestScatterEmpty(t *testing.T) {
	if !strings.Contains(Scatter("t", nil, 10), "no data") {
		t.Error("empty scatter should render placeholder")
	}
}

func TestBars(t *testing.T) {
	out := Bars("slopes", []Bar{
		{Label: "pm/PD", Value: 0.0026},
		{Label: "pc/CD", Value: 0.00204},
		{Label: "neg", Value: -0.001},
	}, nil)
	if !strings.Contains(out, "pm/PD") || !strings.Contains(out, "#") {
		t.Errorf("bars missing:\n%s", out)
	}
	// Negative bars extend left of the baseline: the '#' must appear
	// before the '|' on that row.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "neg") {
			if strings.Index(line, "#") > strings.Index(line, "|") {
				t.Errorf("negative bar direction wrong: %q", line)
			}
		}
	}
}

func TestBarsEmpty(t *testing.T) {
	if !strings.Contains(Bars("t", nil, nil), "no data") {
		t.Error("empty bars should render placeholder")
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("z", []Bar{{Label: "a", Value: 0}}, nil)
	if out == "" {
		t.Error("zero-value bars must render")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"Mode", "Tool", "Median"}, [][]string{
		{"user+kernel", "pm", "726"},
		{"user", "pc", "67"},
	})
	if !strings.Contains(out, "Mode") || !strings.Contains(out, "----") {
		t.Errorf("header/underline missing:\n%s", out)
	}
	if !strings.Contains(out, "user+kernel") {
		t.Error("row missing")
	}
}

func TestLabelFormats(t *testing.T) {
	for v, want := range map[float64]string{
		0:   "0",
		726: "726",
		2.5: "2.5",
	} {
		if got := label(v); got != want {
			t.Errorf("label(%v) = %q, want %q", v, got, want)
		}
	}
	if label(2.5e6) == "" || label(0.00204) == "" {
		t.Error("extreme labels must render")
	}
}

func TestAxisClamping(t *testing.T) {
	ax := newAxis(0, 100, 10)
	if ax.col(-5) != 0 || ax.col(500) != 9 {
		t.Error("axis must clamp out-of-range values")
	}
	// Degenerate range must not divide by zero.
	ax = newAxis(5, 5, 10)
	_ = ax.col(5)
}
