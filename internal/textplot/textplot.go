// Package textplot renders the paper's figure types — box plots, violin
// plots, scatter plots, and bar charts — as plain text, so every
// experiment binary can show its results in a terminal and in
// EXPERIMENTS.md without external plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// Width is the default plot width in characters.
const Width = 72

// axis maps data values onto [0, width) columns.
type axis struct {
	lo, hi float64
	width  int
}

func newAxis(lo, hi float64, width int) axis {
	if hi <= lo {
		hi = lo + 1
	}
	return axis{lo: lo, hi: hi, width: width}
}

func (a axis) col(v float64) int {
	f := (v - a.lo) / (a.hi - a.lo)
	c := int(f * float64(a.width-1))
	if c < 0 {
		c = 0
	}
	if c >= a.width {
		c = a.width - 1
	}
	return c
}

// label formats a tick value compactly.
func label(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// BoxRow is one labeled sample in a box-plot panel.
type BoxRow struct {
	Label string
	Data  []float64
}

// Boxes renders horizontal Tukey box plots on a shared axis, the layout
// of the paper's Figures 4-6. The scale line is printed beneath.
func Boxes(title string, rows []BoxRow) string {
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	boxes := make([]stats.Box, len(rows))
	ok := make([]bool, len(rows))
	for i, r := range rows {
		b, err := stats.BoxStats(r.Data)
		if err != nil {
			continue
		}
		boxes[i], ok[i] = b, true
		lo = math.Min(lo, b.Summary.Min)
		hi = math.Max(hi, b.Summary.Max)
	}
	if math.IsInf(lo, 1) {
		return sb.String() + "(no data)\n"
	}
	labW := 0
	for _, r := range rows {
		if len(r.Label) > labW {
			labW = len(r.Label)
		}
	}
	ax := newAxis(lo, hi, Width)
	for i, r := range rows {
		if !ok[i] {
			fmt.Fprintf(&sb, "%*s | (no data)\n", labW, r.Label)
			continue
		}
		fmt.Fprintf(&sb, "%*s |%s| med=%s\n", labW, r.Label, renderBox(boxes[i], ax), label(boxes[i].Med))
	}
	fmt.Fprintf(&sb, "%*s  %s\n", labW, "", scaleLine(ax))
	return sb.String()
}

// renderBox draws one box row: whisker line, box (=), median (M),
// outliers (o).
func renderBox(b stats.Box, ax axis) string {
	row := make([]byte, ax.width)
	for i := range row {
		row[i] = ' '
	}
	for c := ax.col(b.LoWhisker); c <= ax.col(b.HiWhisker); c++ {
		row[c] = '-'
	}
	for c := ax.col(b.Q1); c <= ax.col(b.Q3); c++ {
		row[c] = '='
	}
	for _, o := range b.Outliers {
		row[ax.col(o)] = 'o'
	}
	row[ax.col(b.Med)] = 'M'
	return string(row)
}

// scaleLine renders the axis with min/mid/max ticks.
func scaleLine(ax axis) string {
	left := label(ax.lo)
	mid := label((ax.lo + ax.hi) / 2)
	right := label(ax.hi)
	gap := ax.width - len(left) - len(mid) - len(right)
	if gap < 2 {
		return left + " .. " + right
	}
	return left + strings.Repeat(" ", gap/2) + mid + strings.Repeat(" ", gap-gap/2) + right
}

// Violin renders a vertical-axis violin plot (density trace mirrored
// around a center line, Figure 1's presentation) using rows of width
// proportional to the kernel density estimate.
func Violin(title string, data []float64, rows int) string {
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	if len(data) == 0 || rows < 3 {
		return sb.String() + "(no data)\n"
	}
	kde := stats.NewKDE(data)
	locs, dens := kde.Grid(rows)
	maxD := stats.Max(dens)
	if maxD == 0 {
		return sb.String() + "(flat density)\n"
	}
	sum, err := stats.Summarize(data)
	if err != nil {
		return sb.String() + "(no data)\n"
	}
	half := Width / 2
	for i, d := range dens {
		w := int(d / maxD * float64(half-1))
		line := strings.Repeat(" ", half-w) + strings.Repeat("#", w) + "|" + strings.Repeat("#", w)
		marker := " "
		v := locs[i]
		step := locs[1] - locs[0]
		if sum.Med >= v-step/2 && sum.Med < v+step/2 {
			marker = "M"
		}
		fmt.Fprintf(&sb, "%10s %s %s\n", label(v), line, marker)
	}
	fmt.Fprintf(&sb, "%10s n=%d median=%s iqr=%s max=%s\n", "",
		sum.N, label(sum.Med), label(sum.IQR()), label(sum.Max))
	return sb.String()
}

// Point is one scatter-plot point.
type Point struct{ X, Y float64 }

// Scatter renders an x/y scatter plot (the Figures 10-11 layout), with
// optional reference lines y = k*x drawn as '/' characters.
func Scatter(title string, pts []Point, height int, refSlopes ...float64) string {
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	if len(pts) == 0 || height < 2 {
		return sb.String() + "(no data)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	ax := newAxis(minX, maxX, Width)
	ay := newAxis(minY, maxY, height)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", Width))
	}
	for _, k := range refSlopes {
		for c := 0; c < Width; c++ {
			x := ax.lo + (ax.hi-ax.lo)*float64(c)/float64(Width-1)
			y := k * x
			if y < ay.lo || y > ay.hi {
				continue
			}
			grid[height-1-ay.col(y)][c] = '/'
		}
	}
	for _, p := range pts {
		grid[height-1-ay.col(p.Y)][ax.col(p.X)] = '*'
	}
	for i, row := range grid {
		yv := ay.hi - (ay.hi-ay.lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%10s |%s\n", label(yv), string(row))
	}
	fmt.Fprintf(&sb, "%10s  %s\n", "", scaleLine(ax))
	return sb.String()
}

// Bar is one labeled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// Bars renders a horizontal bar chart (the Figures 7-8 layout). Negative
// values extend left from a zero baseline.
func Bars(title string, bars []Bar, format func(float64) string) string {
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	if len(bars) == 0 {
		return sb.String() + "(no data)\n"
	}
	if format == nil {
		format = label
	}
	maxAbs := 0.0
	labW := 0
	for _, b := range bars {
		maxAbs = math.Max(maxAbs, math.Abs(b.Value))
		if len(b.Label) > labW {
			labW = len(b.Label)
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	half := Width / 2
	for _, b := range bars {
		w := int(math.Abs(b.Value) / maxAbs * float64(half-1))
		var line string
		if b.Value >= 0 {
			line = strings.Repeat(" ", half) + "|" + strings.Repeat("#", w)
		} else {
			line = strings.Repeat(" ", half-w) + strings.Repeat("#", w) + "|"
		}
		fmt.Fprintf(&sb, "%*s %-*s %s\n", labW, b.Label, Width+1, line, format(b.Value))
	}
	return sb.String()
}

// Table renders rows of cells with aligned columns; header is underlined.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	for i, w := range widths {
		fmt.Fprintf(&sb, "%s  ", strings.Repeat("-", w))
		_ = i
	}
	sb.WriteString("\n")
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}
