package compiler

import (
	"testing"
	"testing/quick"
)

func TestOptLevelString(t *testing.T) {
	want := map[OptLevel]string{O0: "-O0", O1: "-O1", O2: "-O2", O3: "-O3"}
	for o, w := range want {
		if o.String() != w {
			t.Errorf("%d: %q != %q", o, o.String(), w)
		}
	}
	if OptLevel(7).String() == "" {
		t.Error("unknown level must render")
	}
}

func TestGlueShrinksWithOptimization(t *testing.T) {
	prev := Harness("pm", "ar", O0, "K8")
	for _, o := range []OptLevel{O1, O2, O3} {
		g := Harness("pm", "ar", o, "K8")
		if g.PreInstr >= prev.PreInstr || g.PostInstr >= prev.PostInstr {
			t.Errorf("glue did not shrink at %s: %+v vs %+v", o, g, prev)
		}
		prev = g
	}
}

// TestPlacementDeterministic: recompiling the same configuration yields
// the same executable, hence the same load address — the reason each
// (pattern, opt) cell in the paper's Figure 12 forms one clean line.
func TestPlacementDeterministic(t *testing.T) {
	f := func(opt uint8) bool {
		o := OptLevel(opt % 4)
		a := Harness("pc", "rr", o, "CD")
		b := Harness("pc", "rr", o, "CD")
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPlacementVariesAcrossConfigurations: different executables land at
// different addresses (with 4096 possible offsets, 16 configurations
// colliding entirely would be suspicious).
func TestPlacementVariesAcrossConfigurations(t *testing.T) {
	seen := map[uint64]bool{}
	for _, pat := range []string{"ar", "ao", "rr", "ro"} {
		for _, o := range AllOptLevels {
			seen[Harness("pm", pat, o, "K8").Base] = true
		}
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct placements across 16 configurations", len(seen))
	}
}

// TestPlacementCoversAlignments: across many configurations, load
// addresses must cover both fetch-window-aligned and straddling cases,
// otherwise the Figure 11 bimodality cannot appear.
func TestPlacementCoversAlignments(t *testing.T) {
	aligned, straddling := 0, 0
	for _, infra := range []string{"pm", "pc", "PLpm", "PLpc", "PHpm", "PHpc"} {
		for _, pat := range []string{"ar", "ao", "rr", "ro"} {
			for _, o := range AllOptLevels {
				g := Harness(infra, pat, o, "K8")
				if g.Base%16 < 7 {
					aligned++
				} else {
					straddling++
				}
			}
		}
	}
	if aligned == 0 || straddling == 0 {
		t.Errorf("alignment classes not covered: %d aligned, %d straddling", aligned, straddling)
	}
}

func TestBaseInTextSegment(t *testing.T) {
	g := Harness("pm", "ar", O2, "PD")
	if g.Base < 0x08048000 || g.Base >= 0x08048000+4096 {
		t.Errorf("base %#x outside text segment window", g.Base)
	}
}
