// Package compiler models the aspects of gcc 4.1.2 that matter to the
// study: the measurement harness glue emitted around the pattern calls
// at each optimization level, and — crucially — code placement.
//
// The paper's Section 4.3 ANOVA finds the optimization level does *not*
// significantly affect the instruction-count error, because only the
// small call glue is optimizable and it executes outside the measurement
// window. But Section 6 shows placement — which changes with every
// (pattern, optimization level) combination because each produces a
// different executable — swings the *cycles* per loop iteration between
// groups (2 vs 3 cycles on the K8, Figure 11). This package reproduces
// both behaviours: glue instruction counts vary with the optimization
// level, and the load address is a deterministic hash of everything that
// changes the executable.
package compiler

import (
	"fmt"

	"repro/internal/xrand"
)

// OptLevel is a gcc optimization level, O0 through O3.
type OptLevel uint8

// The four levels exercised in the study (Section 3.6).
const (
	O0 OptLevel = iota
	O1
	O2
	O3
)

// AllOptLevels lists the levels in the paper's order.
var AllOptLevels = []OptLevel{O0, O1, O2, O3}

// String returns the gcc flag, e.g. "-O2".
func (o OptLevel) String() string {
	if o > O3 {
		return fmt.Sprintf("-O%d?", uint8(o))
	}
	return fmt.Sprintf("-O%d", uint8(o))
}

// Glue describes the compiled measurement harness: the instruction
// counts of the unmeasured prologue and epilogue around the pattern
// calls, and the load address of the harness code.
type Glue struct {
	// PreInstr and PostInstr are harness instructions executed before
	// the first and after the last pattern call. They never land inside
	// a measurement window, so they cannot affect the instruction-count
	// error — the mechanism behind the ANOVA result.
	PreInstr, PostInstr int
	// Base is the code load address of the harness. Different
	// executables place the (identical) benchmark code at different
	// addresses.
	Base uint64
}

// glueSizes gives (pre, post) harness instruction counts per level:
// unoptimized harness code spills locals and reloads arguments.
var glueSizes = [4][2]int{
	O0: {126, 94},
	O1: {64, 47},
	O2: {42, 31},
	O3: {34, 25},
}

// textBase is the conventional IA32 executable text segment base.
const textBase = 0x0804_8000

// Harness compiles the measurement harness for an (infrastructure,
// pattern, optimization level) combination on a given machine. The
// returned glue is deterministic: recompiling the same combination
// reproduces the same executable, hence the same placement — which is
// why the paper's Figure 12 cells each form a clean line.
func Harness(infra, pattern string, opt OptLevel, machine string) Glue {
	sizes := glueSizes[opt]
	h := xrand.Mix(hashString(infra), hashString(pattern), uint64(opt), hashString(machine))
	return Glue{
		PreInstr:  sizes[0],
		PostInstr: sizes[1],
		// Placement granularity is one byte across a 4 KiB window: lay
		// out enough variety for every fetch-window alignment to occur.
		Base: textBase + h%4096,
	}
}

// hashString folds a string into a 64-bit value for placement hashing.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
