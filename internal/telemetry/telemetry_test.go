package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("nil trace Start returned non-nil span")
	}
	sp.Annotate("k", "v") // must not panic
	sp.End()
	if !tr.Clock().IsZero() {
		t.Fatalf("nil trace Clock not zero")
	}
	tr.AddSince("x", time.Time{})
	tr.Add("x", time.Millisecond)
	tr.SetCoalesced()
	spans, coalesced := tr.Snapshot()
	if spans != nil || coalesced {
		t.Fatalf("nil trace Snapshot = %v, %v", spans, coalesced)
	}
}

func TestFromContextAbsent(t *testing.T) {
	if tr := FromContext(context.Background()); tr != nil {
		t.Fatalf("FromContext on bare context = %v, want nil", tr)
	}
	if sp := StartSpan(context.Background(), "x"); sp != nil {
		t.Fatalf("StartSpan on bare context = %v, want nil", sp)
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	sp := StartSpan(ctx, SpanEngineRun)
	sp.Annotate("engine", "compiled").Annotate("shard", "K8/pc")
	time.Sleep(time.Millisecond)
	sp.End()

	start := tr.Clock()
	time.Sleep(time.Millisecond)
	tr.AddSince(SpanCoalesceWait, start, Annotation{Key: "role", Value: "follower"})
	tr.SetCoalesced()

	spans, coalesced := tr.Snapshot()
	if !coalesced {
		t.Fatalf("coalesced not set")
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != SpanEngineRun || spans[0].Duration <= 0 {
		t.Fatalf("bad first span: %+v", spans[0])
	}
	if len(spans[0].Annotations) != 2 || spans[0].Annotations[0].Value != "compiled" {
		t.Fatalf("bad annotations: %+v", spans[0].Annotations)
	}
	if spans[1].Name != SpanCoalesceWait || spans[1].Duration <= 0 {
		t.Fatalf("bad second span: %+v", spans[1])
	}
}

func TestAddSinceIgnoresZeroStart(t *testing.T) {
	tr := New()
	tr.AddSince("x", time.Time{})
	if spans, _ := tr.Snapshot(); len(spans) != 0 {
		t.Fatalf("AddSince with zero start recorded %d spans", len(spans))
	}
}

func TestObserverSeesEverySpan(t *testing.T) {
	var seen []string
	tr := NewObserved(func(sd SpanData) { seen = append(seen, sd.Name) })
	tr.Start(SpanParse).End()
	tr.Add(SpanEncode, time.Microsecond)
	if len(seen) != 2 || seen[0] != SpanParse || seen[1] != SpanEncode {
		t.Fatalf("observer saw %v", seen)
	}
}

func TestSpanNamesStable(t *testing.T) {
	names := SpanNames()
	if len(names) != 10 {
		t.Fatalf("span catalogue has %d names, want 10", len(names))
	}
	uniq := map[string]bool{}
	for _, n := range names {
		if uniq[n] {
			t.Fatalf("duplicate span name %s", n)
		}
		uniq[n] = true
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-4, 10, 3)
	if len(b) == 0 {
		t.Fatal("no buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v", i, b)
		}
	}
	if b[0] != 1e-4 {
		t.Fatalf("first bucket %v, want 1e-4", b[0])
	}
	if last := b[len(b)-1]; last < 9.99 || last > 10.01 {
		t.Fatalf("last bucket %v, want ~10", last)
	}
	// Three per decade across five decades: 16 bounds inclusive.
	if len(b) != 16 {
		t.Fatalf("got %d buckets, want 16: %v", len(b), b)
	}
}

func TestLogBucketsDegenerate(t *testing.T) {
	// min == max: one bucket, no panic.
	b := LogBuckets(0.5, 0.5, 3)
	if len(b) != 1 || b[0] != 0.5 {
		t.Fatalf("LogBuckets(0.5, 0.5, 3) = %v, want [0.5]", b)
	}
	// A range narrower than one step also yields a single bucket.
	b = LogBuckets(1, 1.1, 1)
	if len(b) != 1 || b[0] != 1 {
		t.Fatalf("LogBuckets(1, 1.1, 1) = %v, want [1]", b)
	}
	// One histogram built over it still works end to end.
	h := NewHistogram(LogBuckets(0.5, 0.5, 3))
	h.Observe(100 * time.Millisecond) // <= 0.5
	h.Observe(2 * time.Second)        // +Inf
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Family("deg_seconds", "degenerate", "histogram")
	e.Histogram(h)
	out := sb.String()
	for _, want := range []string{
		`deg_seconds_bucket{le="0.5"} 1`,
		`deg_seconds_bucket{le="+Inf"} 2`,
		"deg_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLogBucketsBadParams(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		per    int
	}{
		{0, 1, 3}, {-1, 1, 3}, {1, 0.5, 3}, {1, 10, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogBuckets(%v, %v, %d) did not panic", tc.lo, tc.hi, tc.per)
				}
			}()
			LogBuckets(tc.lo, tc.hi, tc.per)
		}()
	}
}

func TestHistogramObserveAndExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogramVec("test_duration_seconds", "Test durations.", []float64{0.001, 0.01, 0.1}, "stage")
	h := hv.With("parse")
	h.Observe(500 * time.Microsecond) // bucket 0.001
	h.Observe(5 * time.Millisecond)   // bucket 0.01
	h.Observe(2 * time.Second)        // +Inf
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_duration_seconds Test durations.",
		"# TYPE test_duration_seconds histogram",
		`test_duration_seconds_bucket{stage="parse",le="0.001"} 1`,
		`test_duration_seconds_bucket{stage="parse",le="0.01"} 2`,
		`test_duration_seconds_bucket{stage="parse",le="0.1"} 2`,
		`test_duration_seconds_bucket{stage="parse",le="+Inf"} 3`,
		`test_duration_seconds_count{stage="parse"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecExposition(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_requests_total", "Test requests.", "endpoint")
	cv.With("/measure").Add(3)
	cv.With("/plan").Inc()
	cv.With("/measure").Inc() // same child
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_requests_total{endpoint="/measure"} 4`,
		`test_requests_total{endpoint="/plan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("dup_total", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family did not panic")
		}
	}()
	r.NewCounterVec("dup_total", "two")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("esc_total", "escapes", "k")
	cv.With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `esc_total{k="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestLabelEscapeRoundTrip(t *testing.T) {
	cases := []string{
		`plain`,
		`quote " inside`,
		`backslash \ inside`,
		"newline\ninside",
		`trailing backslash \`,
		`\" already escaped-looking`,
		"mix \" of \\ all\nthree",
		``,
	}
	for _, in := range cases {
		esc := escapeLabel(in)
		if strings.ContainsAny(esc, "\n") {
			t.Errorf("escapeLabel(%q) = %q still contains a raw newline", in, esc)
		}
		if got := unescapeLabel(esc); got != in {
			t.Errorf("round trip %q -> %q -> %q", in, esc, got)
		}
	}
}

func TestLabelEscapingThroughParser(t *testing.T) {
	// A value with every escapable character must survive write -> parse.
	val := "a\"b\\c\nd,e=f}g"
	var b strings.Builder
	e := NewExpo(&b)
	e.Family("esc_total", "escapes", "counter")
	e.Sample(7, Annotation{Key: "k", Value: val}, Annotation{Key: "plain", Value: "x"})
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, b.String())
	}
	if len(fams) != 1 || len(fams[0].Samples) != 1 {
		t.Fatalf("parsed %+v", fams)
	}
	s := fams[0].Samples[0]
	if len(s.Labels) != 2 || s.Labels[0].Value != val || s.Labels[1].Value != "x" {
		t.Fatalf("labels did not round-trip: %+v", s.Labels)
	}
	if s.Value != 7 {
		t.Fatalf("value %v, want 7", s.Value)
	}
}

func TestExpoSharedFormatter(t *testing.T) {
	var b strings.Builder
	e := NewExpo(&b)
	e.Family("pool_workers", "Workers by state.", "gauge")
	e.Sample(3, Annotation{Key: "shard", Value: "K8/pc"}, Annotation{Key: "state", Value: "idle"})
	e.Sample(1.5)
	out := b.String()
	for _, want := range []string{
		"# HELP pool_workers Workers by state.",
		"# TYPE pool_workers gauge",
		`pool_workers{shard="K8/pc",state="idle"} 3`,
		"pool_workers 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
