package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count, safe for concurrent
// use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram of durations. Buckets hold
// per-bucket (non-cumulative) counts internally; the exposition writer
// accumulates them into the Prometheus cumulative form. Observations
// are lock-free atomic adds.
type Histogram struct {
	upper  []float64 // ascending upper bounds, seconds; +Inf implied
	counts []atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (in seconds).
func NewHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, upper))
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// LogBuckets returns perDecade log-spaced upper bounds per decade from
// lo to hi inclusive (both in seconds): the standard latency bucket
// layout (docs/OBSERVABILITY.md). lo == hi degenerates to a single
// bucket, so a caller collapsing a range never has to special-case it.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi < lo || perDecade < 1 {
		panic("telemetry: bad LogBuckets parameters")
	}
	var out []float64
	ratio := math.Pow(10, 1/float64(perDecade))
	for v := lo; v < hi*(1+1e-9); v *= ratio {
		// Snap to a short decimal so bucket bounds render stably.
		out = append(out, snap(v))
	}
	return out
}

// snap rounds v to three significant figures, keeping exposition
// bucket labels short and stable across float accumulation error.
func snap(v float64) float64 {
	s, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 3, 64), 64)
	if err != nil {
		return v
	}
	return s
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sec := d.Seconds()
	i := sort.SearchFloat64s(h.upper, sec)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one named metric family with its labeled children.
type family struct {
	name string
	help string
	kind kind

	mu       sync.Mutex
	order    []string // child keys in first-seen order
	counters map[string]*Counter
	hists    map[string]*Histogram
	labels   map[string][]Annotation // child key -> label pairs
	vars     []string                // label names for vec families
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Families register once at startup; observation is
// lock-free on the hot path.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(name, help string, k kind, labelNames []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic("telemetry: duplicate metric family " + name)
	}
	f := &family{
		name: name, help: help, kind: k, vars: labelNames,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		labels:   make(map[string][]Annotation),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	f *family
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.add(name, help, kindCounter, labelNames)}
}

// With returns the child counter for the given label values,
// creating it on first use. Bind children once at startup; With takes
// the family lock.
func (v *CounterVec) With(labelValues ...string) *Counter {
	f := v.f
	key := childKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.counters[key]; ok {
		return c
	}
	c := &Counter{}
	f.counters[key] = c
	f.labels[key] = pairs(f.vars, labelValues)
	f.order = append(f.order, key)
	return c
}

// HistogramVec is a histogram family keyed by label values, all
// children sharing one bucket layout.
type HistogramVec struct {
	f     *family
	upper []float64
}

// NewHistogramVec registers a histogram family with the given bucket
// upper bounds and label names.
func (r *Registry) NewHistogramVec(name, help string, upper []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.add(name, help, kindHistogram, labelNames), upper: upper}
}

// With returns the child histogram for the given label values,
// creating it on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	f := v.f
	key := childKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.hists[key]; ok {
		return h
	}
	h := NewHistogram(v.upper)
	f.hists[key] = h
	f.labels[key] = pairs(f.vars, labelValues)
	f.order = append(f.order, key)
	return h
}

func childKey(values []string) string { return strings.Join(values, "\x00") }

func pairs(names, values []string) []Annotation {
	if len(names) != len(values) {
		panic(fmt.Sprintf("telemetry: %d label values for %d label names", len(values), len(names)))
	}
	ps := make([]Annotation, len(names))
	for i := range names {
		ps[i] = Annotation{Key: names[i], Value: values[i]}
	}
	return ps
}

// WritePrometheus renders every registered family in registration
// order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	e := NewExpo(w)
	for _, f := range fams {
		f.write(e)
	}
}

func (f *family) write(e *Expo) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.Family(f.name, f.help, string(f.kind))
	for _, key := range f.order {
		switch f.kind {
		case kindHistogram:
			e.Histogram(f.hists[key], f.labels[key]...)
		default:
			e.Sample(float64(f.counters[key].Value()), f.labels[key]...)
		}
	}
}

// Expo writes Prometheus text exposition format (version 0.0.4): one
// Family header (HELP/TYPE) followed by its Sample or Histogram
// children. It is shared by the registry above and by snapshot-derived
// metrics (pcserved renders service.Stats through it), so both paths
// emit identical formatting.
type Expo struct {
	w    io.Writer
	name string
}

// NewExpo returns an exposition writer.
func NewExpo(w io.Writer) *Expo { return &Expo{w: w} }

// Family writes the HELP and TYPE header for a metric family and makes
// it current for subsequent samples.
func (e *Expo) Family(name, help, typ string) {
	e.name = name
	fmt.Fprintf(e.w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(e.w, "# TYPE %s %s\n", name, typ)
}

// Sample writes one sample of the current family.
func (e *Expo) Sample(value float64, labels ...Annotation) {
	e.sample(e.name, value, labels)
}

// NamedSample writes one sample under an explicit sample name (the
// family name plus a suffix such as _bucket/_sum/_count), bypassing the
// current-family default. The federation writer uses it to re-emit
// parsed samples whose suffixes are part of the parsed name.
func (e *Expo) NamedSample(name string, value float64, labels ...Annotation) {
	e.sample(name, value, labels)
}

// StaticHistogram writes a pre-bucketed histogram child of the current
// family in the cumulative _bucket/_sum/_count form: counts holds one
// per-bucket (non-cumulative) count per upper bound plus a final
// overflow bucket (len(upper)+1 entries). Sum may be NaN when the
// source (e.g. runtime/metrics) does not track one.
func (e *Expo) StaticHistogram(upper []float64, counts []uint64, sum float64, labels ...Annotation) {
	var cum uint64
	for i, ub := range upper {
		cum += counts[i]
		e.sample(e.name+"_bucket", float64(cum),
			append(append([]Annotation{}, labels...), Annotation{Key: "le", Value: formatFloat(ub)}))
	}
	cum += counts[len(upper)]
	e.sample(e.name+"_bucket", float64(cum),
		append(append([]Annotation{}, labels...), Annotation{Key: "le", Value: "+Inf"}))
	e.sample(e.name+"_sum", sum, labels)
	e.sample(e.name+"_count", float64(cum), labels)
}

// Histogram writes a histogram child of the current family in the
// cumulative _bucket/_sum/_count form.
func (e *Expo) Histogram(h *Histogram, labels ...Annotation) {
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		e.sample(e.name+"_bucket", float64(cum),
			append(append([]Annotation{}, labels...), Annotation{Key: "le", Value: formatFloat(ub)}))
	}
	cum += h.counts[len(h.upper)].Load()
	e.sample(e.name+"_bucket", float64(cum),
		append(append([]Annotation{}, labels...), Annotation{Key: "le", Value: "+Inf"}))
	e.sample(e.name+"_sum", float64(h.sumNs.Load())/1e9, labels)
	e.sample(e.name+"_count", float64(h.count.Load()), labels)
}

func (e *Expo) sample(name string, value float64, labels []Annotation) {
	if len(labels) == 0 {
		fmt.Fprintf(e.w, "%s %s\n", name, formatFloat(value))
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	fmt.Fprintf(e.w, "%s %s\n", b.String(), formatFloat(value))
}

// formatFloat renders integers without an exponent or trailing
// decimals and everything else with Go's shortest representation.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
