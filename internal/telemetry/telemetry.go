// Package telemetry is the dependency-free observability layer of the
// serving stack: request traces (named spans with monotonic durations
// and annotations, carried via context.Context), a small metrics
// registry (counters, gauges, log-spaced histograms) rendered as
// Prometheus text exposition, and the span catalogue every layer
// shares. The design constraint is the paper's own discipline turned
// inward — observe everything, but prove the observer costs ~nothing:
// every Trace and Span method is nil-safe, so the disabled path (no
// trace in the context) is a couple of nil checks with no clock reads
// and no allocation.
package telemetry

import (
	"context"
	"sync"
	"time"
)

// Span names shared by every instrumented layer. The catalogue is
// closed on purpose: a fixed set keeps the per-stage histogram label
// space bounded and lets docs/OBSERVABILITY.md enumerate every span a
// trace can carry.
const (
	SpanParse        = "parse"         // HTTP body decode (handleJSON)
	SpanCanonicalize = "canonicalize"  // request normalization
	SpanCoalesceWait = "coalesce-wait" // follower waiting on a flight leader
	SpanPoolAcquire  = "pool-acquire"  // worker checkout from a shard pool
	SpanCalibrate    = "calibrate"     // calibration lookup or run
	SpanEngineRun    = "engine-run"    // benchmark execution on an engine
	SpanCorrect      = "correct"       // accuracy correction / annotation
	SpanFuse         = "fuse"          // plan estimate fusion
	SpanInferSolve   = "infer-solve"   // bayes constraint solve
	SpanEncode       = "encode"        // HTTP response encode (handleJSON)
)

// Cluster-tier span names, recorded by pcfront around the internal hop
// (internal/cluster). They live in the same closed catalogue so a
// stitched fleet trace draws every name from one enumerable set, but
// they are listed separately (FrontSpanNames) because the two processes
// bind disjoint stage histograms.
const (
	SpanRoute             = "route"              // ring placement of a canonical key
	SpanForward           = "forward"            // one backend attempt, launch to response
	SpanRetry             = "retry"              // a budgeted (or free-failover) retry launch
	SpanHedge             = "hedge"              // a tail-latency hedge race, launch to win
	SpanStreamPassthrough = "stream-passthrough" // an NDJSON stream proxied to its end
)

// SpanNames lists the measurement node's span catalogue in a stable
// order, used to pre-bind the per-stage duration histograms.
func SpanNames() []string {
	return []string{
		SpanParse, SpanCanonicalize, SpanCoalesceWait, SpanPoolAcquire,
		SpanCalibrate, SpanEngineRun, SpanCorrect, SpanFuse,
		SpanInferSolve, SpanEncode,
	}
}

// FrontSpanNames lists the cluster front end's span catalogue in a
// stable order. A stitched cluster trace contains front spans from this
// set and a backend subtree drawn from SpanNames.
func FrontSpanNames() []string {
	return []string{
		SpanRoute, SpanForward, SpanRetry, SpanHedge, SpanStreamPassthrough,
	}
}

// Annotation is one key=value note on a span (engine used, cache
// hit/miss, worker shard, ...).
type Annotation struct {
	Key   string
	Value string
}

// SpanData is one finished span: its name, offset from the trace
// start, duration, and annotations. Durations come from the monotonic
// clock (time.Since), so they are immune to wall-clock steps.
type SpanData struct {
	Name        string
	Start       time.Duration // offset from the trace's start
	Duration    time.Duration
	Annotations []Annotation
}

// Observer receives every finished span of a trace, letting the HTTP
// layer feed per-stage metrics from the same spans a caller can opt
// into seeing. Observers must be safe for concurrent use: batch
// endpoints finish spans from many goroutines.
type Observer func(SpanData)

// Trace accumulates the spans of one request. The zero value is not
// used; a nil *Trace is the disabled state and every method on it is a
// cheap no-op, so call sites never branch on enablement.
type Trace struct {
	observer Observer
	start    time.Time

	mu        sync.Mutex
	spans     []SpanData
	coalesced bool
}

// New returns an enabled trace with no observer (spans are retained
// for Snapshot only).
func New() *Trace {
	return &Trace{start: time.Now()}
}

// NewObserved returns an enabled trace whose finished spans are also
// delivered to obs.
func NewObserved(obs Observer) *Trace {
	return &Trace{observer: obs, start: time.Now()}
}

type ctxKey struct{}

// NewContext returns ctx carrying tr.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil when the
// request is untraced. The nil return composes with the nil-safe
// methods: tr := FromContext(ctx); defer tr.Start(name).End() is
// correct and near-free either way.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// StartSpan opens a span on the context's trace, if any.
func StartSpan(ctx context.Context, name string) *Span {
	return FromContext(ctx).Start(name)
}

// Span is one in-progress span. A nil *Span (from a nil trace) is a
// valid no-op.
type Span struct {
	t      *Trace
	name   string
	start  time.Time
	annots []Annotation
}

// Start opens a named span. On a nil trace it returns nil without
// reading the clock.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// Annotate attaches a key=value note and returns the span for
// chaining.
func (s *Span) Annotate(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.annots = append(s.annots, Annotation{Key: key, Value: value})
	return s
}

// End finishes the span and records it on the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.record(SpanData{
		Name:        s.name,
		Start:       s.start.Sub(s.t.start),
		Duration:    now.Sub(s.start),
		Annotations: s.annots,
	})
}

// Clock returns the current time when the trace is enabled and the
// zero time otherwise, so disabled paths skip the clock read entirely.
// Pair with AddSince for spans whose start predates knowing their
// name (or whose body is a call that must not see the span open).
func (t *Trace) Clock() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// AddSince records a span retroactively, from start (a Clock() value)
// to now. A zero start — the disabled-trace Clock — records nothing
// even on an enabled trace, so callers never pair a live trace with a
// dead timestamp.
func (t *Trace) AddSince(name string, start time.Time, annots ...Annotation) {
	if t == nil || start.IsZero() {
		return
	}
	now := time.Now()
	t.record(SpanData{
		Name:        name,
		Start:       start.Sub(t.start),
		Duration:    now.Sub(start),
		Annotations: annots,
	})
}

// Add records a span with an externally measured duration, anchored
// at the current offset.
func (t *Trace) Add(name string, d time.Duration, annots ...Annotation) {
	if t == nil {
		return
	}
	t.record(SpanData{
		Name:        name,
		Start:       time.Since(t.start) - d,
		Duration:    d,
		Annotations: annots,
	})
}

// SetCoalesced marks the trace's request as a coalesce follower: it
// received a leader's response rather than executing itself. The
// follower's spans stay truthful — canonicalize plus coalesce-wait,
// never a replay of the leader's execution.
func (t *Trace) SetCoalesced() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.coalesced = true
	t.mu.Unlock()
}

func (t *Trace) record(sd SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, sd)
	t.mu.Unlock()
	if t.observer != nil {
		t.observer(sd)
	}
}

// Snapshot returns a copy of the finished spans in completion order
// and the coalesced flag. Nil-safe: a nil trace snapshots empty.
func (t *Trace) Snapshot() ([]SpanData, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]SpanData, len(t.spans))
	copy(spans, t.spans)
	return spans, t.coalesced
}
