package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a parser for the
// Prometheus text format the Expo writer emits, and a Merger that folds
// many nodes' expositions into one fleet view (GET /cluster/metrics on
// pcfront). The merge rules mirror what a federating Prometheus would
// compute: counters, histograms, and untyped samples sum across nodes
// by sample name and label set; gauges are point-in-time per-node facts,
// so they keep one child per node distinguished by a "backend" label.

// ParsedSample is one sample line: the full sample name (including any
// _bucket/_sum/_count suffix), its labels in order, and the value.
type ParsedSample struct {
	Name   string
	Labels []Annotation
	Value  float64
}

// ParsedFamily is one metric family reassembled from HELP/TYPE headers
// and the sample lines attributed to it.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseExposition reads Prometheus text exposition (version 0.0.4) and
// returns its families in first-seen order. Sample lines are attributed
// to the family whose declared name matches the sample name exactly or
// after stripping a histogram suffix; undeclared samples get an untyped
// family of their own.
func ParseExposition(r io.Reader) ([]ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var fams []ParsedFamily
	byName := make(map[string]int)
	family := func(name string) *ParsedFamily {
		if i, ok := byName[name]; ok {
			return &fams[i]
		}
		byName[name] = len(fams)
		fams = append(fams, ParsedFamily{Name: name, Type: "untyped"})
		return &fams[len(fams)-1]
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) >= 3 {
				switch parts[1] {
				case "HELP":
					f := family(parts[2])
					if len(parts) == 4 {
						f.Help = unescapeHelp(parts[3])
					}
				case "TYPE":
					if len(parts) >= 4 {
						family(parts[2]).Type = parts[3]
					}
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("exposition line %d: %w", lineNo, err)
		}
		name := s.Name
		if _, ok := byName[name]; !ok {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(s.Name, suffix); found {
					if _, ok := byName[base]; ok {
						name = base
						break
					}
				}
			}
		}
		f := family(name)
		f.Samples = append(f.Samples, s)
	}
	return fams, sc.Err()
}

// parseSampleLine splits "name{k="v",...} value [timestamp]" into its
// parts, honoring the label-value escapes the writer produces.
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return s, errors.New("malformed sample line")
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest[1:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, errors.New("sample line has no value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `key="value",...}` (the leading '{' already
// eaten) and returns the pairs plus the unconsumed tail.
func parseLabels(s string) ([]Annotation, string, error) {
	var out []Annotation
	for {
		s = strings.TrimLeft(s, " \t,")
		if s == "" {
			return nil, "", errors.New("unterminated label set")
		}
		if s[0] == '}' {
			return out, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, "", errors.New("malformed label pair")
		}
		key := strings.TrimSpace(s[:eq])
		var b strings.Builder
		i := eq + 2
	scan:
		for {
			if i >= len(s) {
				return nil, "", errors.New("unterminated label value")
			}
			switch c := s[i]; c {
			case '\\':
				if i+1 >= len(s) {
					return nil, "", errors.New("dangling escape in label value")
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					// Unknown escape: keep it verbatim, like Prometheus.
					b.WriteByte('\\')
					b.WriteByte(s[i+1])
				}
				i += 2
			case '"':
				i++
				break scan
			default:
				b.WriteByte(c)
				i++
			}
		}
		out = append(out, Annotation{Key: key, Value: b.String()})
		s = s[i:]
	}
}

// unescapeLabel inverts escapeLabel. Exposed for tests asserting the
// round-trip; parseLabels unescapes inline while scanning.
func unescapeLabel(s string) string {
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(s)
}

// unescapeHelp inverts escapeHelp.
func unescapeHelp(s string) string {
	r := strings.NewReplacer(`\\`, `\`, `\n`, "\n")
	return r.Replace(s)
}

// Merger folds parsed expositions from multiple backends into one.
// Family and sample order is first-seen across Add calls, so scraping
// backends in ring order yields a stable merged document.
type Merger struct {
	order []string
	fams  map[string]*mergedFamily
}

type mergedFamily struct {
	name, help, typ string
	order           []string
	samples         map[string]*mergedSample
}

type mergedSample struct {
	name   string
	labels []Annotation
	value  float64
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{fams: make(map[string]*mergedFamily)}
}

// Add folds one backend's families into the merge. Counter, histogram,
// and untyped samples accumulate by (sample name, label set); gauge
// samples gain a backend label and stay per-node.
func (m *Merger) Add(backend string, fams []ParsedFamily) {
	for fi := range fams {
		pf := &fams[fi]
		f, ok := m.fams[pf.Name]
		if !ok {
			f = &mergedFamily{
				name: pf.Name, help: pf.Help, typ: pf.Type,
				samples: make(map[string]*mergedSample),
			}
			m.fams[pf.Name] = f
			m.order = append(m.order, pf.Name)
		}
		for _, s := range pf.Samples {
			labels := s.Labels
			if pf.Type == "gauge" {
				labels = append(append(make([]Annotation, 0, len(labels)+1), labels...),
					Annotation{Key: "backend", Value: backend})
			}
			key := sampleKey(s.Name, labels)
			ms, ok := f.samples[key]
			if !ok {
				ms = &mergedSample{name: s.Name, labels: labels}
				f.samples[key] = ms
				f.order = append(f.order, key)
			}
			ms.value += s.Value
		}
	}
}

// Write renders the merged exposition onto e.
func (m *Merger) Write(e *Expo) {
	for _, name := range m.order {
		f := m.fams[name]
		e.Family(f.name, f.help, f.typ)
		for _, key := range f.order {
			s := f.samples[key]
			e.NamedSample(s.name, s.value, s.labels...)
		}
	}
}

// sampleKey identifies a sample by name and label set, order-blind on
// labels so differently ordered but equal sets merge.
func sampleKey(name string, labels []Annotation) string {
	ps := make([]string, len(labels))
	for i, l := range labels {
		ps[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(ps)
	return name + "\x01" + strings.Join(ps, "\x02")
}
