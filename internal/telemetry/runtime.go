package telemetry

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sort"
	"time"
)

// Runtime exports the process's own vital signs — the Go runtime/metrics
// essentials plus build identity and uptime — as exposition families
// under a process prefix. pcserved and pcfront both embed one, so the
// fleet's self-observation comes from a single implementation: the same
// bucket grid, the same family suffixes, only the prefix differs.
type Runtime struct {
	prefix string
	start  time.Time
}

// NewRuntime returns a collector whose uptime gauge is anchored at the
// call (process construction) time.
func NewRuntime(prefix string) *Runtime {
	return &Runtime{prefix: prefix, start: time.Now()}
}

// runtimeSamples are the runtime/metrics series we re-expose. The set is
// deliberately tiny: enough to see scheduler pressure (goroutines, sched
// latency), memory pressure (live heap), and GC interference with
// measurements (pause distribution) without drowning the exposition.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// runtimeHistBuckets is the grid runtime histograms are folded onto:
// 1ns..10s log-spaced, coarser than the runtime's native buckets but
// aligned with the request-latency layout so the two read side by side.
var runtimeHistBuckets = LogBuckets(1e-9, 10, 2)

// Write renders the runtime families onto e. It reads runtime/metrics
// fresh on every call, so the exposition is a point-in-time snapshot.
func (r *Runtime) Write(e *Expo) {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)

	e.Family(r.prefix+"_go_goroutines", "Live goroutines.", "gauge")
	e.Sample(runtimeValue(samples[0]))
	e.Family(r.prefix+"_go_heap_objects_bytes", "Bytes of live heap objects.", "gauge")
	e.Sample(runtimeValue(samples[1]))
	e.Family(r.prefix+"_go_gc_pause_seconds", "Distribution of stop-the-world GC pauses.", "histogram")
	writeRuntimeHistogram(e, samples[2])
	e.Family(r.prefix+"_go_sched_latency_seconds", "Distribution of goroutine scheduling latency.", "histogram")
	writeRuntimeHistogram(e, samples[3])

	e.Family(r.prefix+"_build_info", "Build identity; value is always 1.", "gauge")
	e.Sample(1,
		Annotation{Key: "go_version", Value: runtime.Version()},
		Annotation{Key: "revision", Value: buildRevision()},
	)
	e.Family(r.prefix+"_uptime_seconds", "Seconds since process start.", "gauge")
	e.Sample(time.Since(r.start).Seconds())
}

// runtimeValue extracts a scalar sample, tolerating kinds the running
// toolchain may not support (KindBad reads as zero rather than a panic).
func runtimeValue(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// writeRuntimeHistogram folds a runtime/metrics Float64Histogram onto
// runtimeHistBuckets and emits it. Each native bucket's count lands in
// the first grid bucket whose upper bound covers the native bucket's
// upper boundary; the runtime does not track a sum, so _sum is NaN —
// honest, and valid exposition.
func writeRuntimeHistogram(e *Expo, s metrics.Sample, labels ...Annotation) {
	counts := make([]uint64, len(runtimeHistBuckets)+1)
	if s.Value.Kind() == metrics.KindFloat64Histogram {
		h := s.Value.Float64Histogram()
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			ub := h.Buckets[i+1]
			j := len(runtimeHistBuckets) // overflow
			if !math.IsInf(ub, 1) {
				j = sort.SearchFloat64s(runtimeHistBuckets, ub)
			}
			counts[j] += c
		}
	}
	e.StaticHistogram(runtimeHistBuckets, counts, math.NaN(), labels...)
}

// buildRevision returns the VCS revision baked into the binary, or
// "unknown" for builds without embedded VCS info (e.g. go test).
func buildRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}
