package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestParseExpositionBasics(t *testing.T) {
	in := `# HELP reqs_total Requests served.
# TYPE reqs_total counter
reqs_total{endpoint="/measure"} 4
reqs_total{endpoint="/plan"} 1
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.01"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 0.05
lat_seconds_count 3
bare_untyped 42
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3: %+v", len(fams), fams)
	}
	if fams[0].Name != "reqs_total" || fams[0].Type != "counter" || fams[0].Help != "Requests served." {
		t.Fatalf("family 0: %+v", fams[0])
	}
	if len(fams[0].Samples) != 2 || fams[0].Samples[0].Labels[0].Value != "/measure" {
		t.Fatalf("family 0 samples: %+v", fams[0].Samples)
	}
	// Histogram suffixes all attribute to the declared base family.
	if fams[1].Name != "lat_seconds" || len(fams[1].Samples) != 4 {
		t.Fatalf("family 1: %+v", fams[1])
	}
	if fams[1].Samples[3].Name != "lat_seconds_count" || fams[1].Samples[3].Value != 3 {
		t.Fatalf("family 1 count sample: %+v", fams[1].Samples[3])
	}
	// Undeclared samples land in an untyped family of their own.
	if fams[2].Name != "bare_untyped" || fams[2].Type != "untyped" || fams[2].Samples[0].Value != 42 {
		t.Fatalf("family 2: %+v", fams[2])
	}
}

func TestParseExpositionSpecialValues(t *testing.T) {
	in := "x_sumish NaN\ny_bound{le=\"+Inf\"} 0\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if !math.IsNaN(fams[0].Samples[0].Value) {
		t.Fatalf("NaN value parsed as %v", fams[0].Samples[0].Value)
	}
	if fams[1].Samples[0].Labels[0].Value != "+Inf" {
		t.Fatalf("label: %+v", fams[1].Samples[0].Labels)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"name{k=\"v\" 1\n",       // unterminated label set
		"name{k=\"v\\\"} 1\n",    // escape eats the closing quote
		"name{k=v\"} 1\n",        // missing opening quote
		"name{k=\"v\"} notnum\n", // bad value
		"name\n",                 // no value
	} {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("ParseExposition(%q) accepted garbage", in)
		}
	}
}

func TestMergerSumsAndLabelsGauges(t *testing.T) {
	m := NewMerger()
	for _, node := range []struct {
		name string
		text string
	}{
		{"n1:7001", "# HELP reqs_total R.\n# TYPE reqs_total counter\nreqs_total{endpoint=\"/measure\"} 4\n# HELP workers W.\n# TYPE workers gauge\nworkers{state=\"idle\"} 2\n# TYPE lat_seconds histogram\nlat_seconds_bucket{le=\"+Inf\"} 3\nlat_seconds_sum 0.5\nlat_seconds_count 3\n"},
		{"n2:7002", "# HELP reqs_total R.\n# TYPE reqs_total counter\nreqs_total{endpoint=\"/measure\"} 6\n# HELP workers W.\n# TYPE workers gauge\nworkers{state=\"idle\"} 5\n# TYPE lat_seconds histogram\nlat_seconds_bucket{le=\"+Inf\"} 1\nlat_seconds_sum 0.25\nlat_seconds_count 1\n"},
	} {
		fams, err := ParseExposition(strings.NewReader(node.text))
		if err != nil {
			t.Fatalf("parse %s: %v", node.name, err)
		}
		m.Add(node.name, fams)
	}

	var b strings.Builder
	m.Write(NewExpo(&b))
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total R.",
		"# TYPE reqs_total counter",
		`reqs_total{endpoint="/measure"} 10`,        // summed across nodes
		`workers{state="idle",backend="n1:7001"} 2`, // gauges stay per-node
		`workers{state="idle",backend="n2:7002"} 5`,
		`lat_seconds_bucket{le="+Inf"} 4`, // histograms sum by le
		"lat_seconds_sum 0.75",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged exposition missing %q:\n%s", want, out)
		}
	}
	// The merged document must itself re-parse cleanly.
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("merged output does not re-parse: %v\n%s", err, out)
	}
}

func TestMergerLabelOrderBlind(t *testing.T) {
	m := NewMerger()
	a, _ := ParseExposition(strings.NewReader("# TYPE t counter\nt{a=\"1\",b=\"2\"} 1\n"))
	b2, _ := ParseExposition(strings.NewReader("# TYPE t counter\nt{b=\"2\",a=\"1\"} 1\n"))
	m.Add("x", a)
	m.Add("y", b2)
	var b strings.Builder
	m.Write(NewExpo(&b))
	if !strings.Contains(b.String(), `t{a="1",b="2"} 2`) {
		t.Fatalf("reordered labels did not merge:\n%s", b.String())
	}
}

func TestStaticHistogram(t *testing.T) {
	var b strings.Builder
	e := NewExpo(&b)
	e.Family("sh_seconds", "static", "histogram")
	e.StaticHistogram([]float64{0.1, 1}, []uint64{2, 1, 4}, math.NaN())
	out := b.String()
	for _, want := range []string{
		`sh_seconds_bucket{le="0.1"} 2`,
		`sh_seconds_bucket{le="1"} 3`,
		`sh_seconds_bucket{le="+Inf"} 7`,
		"sh_seconds_sum NaN",
		"sh_seconds_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeWrite(t *testing.T) {
	r := NewRuntime("testproc")
	var b strings.Builder
	r.Write(NewExpo(&b))
	out := b.String()
	for _, want := range []string{
		"# TYPE testproc_go_goroutines gauge",
		"# TYPE testproc_go_heap_objects_bytes gauge",
		"# TYPE testproc_go_gc_pause_seconds histogram",
		"# TYPE testproc_go_sched_latency_seconds histogram",
		"testproc_build_info{go_version=",
		"# TYPE testproc_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, out)
		}
	}
	// A live process has goroutines and heap.
	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("runtime exposition does not parse: %v\n%s", err, out)
	}
	byName := map[string]ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if g := byName["testproc_go_goroutines"]; len(g.Samples) != 1 || g.Samples[0].Value < 1 {
		t.Fatalf("goroutines: %+v", g)
	}
	if h := byName["testproc_go_heap_objects_bytes"]; len(h.Samples) != 1 || h.Samples[0].Value <= 0 {
		t.Fatalf("heap: %+v", h)
	}
}
