// Package tsdb is the time-series store of the continuous-monitoring
// subsystem: a fixed-capacity ring buffer of corrected counter samples
// with windowed downsampling. A monitoring session (internal/monitor)
// appends one sample per virtual-time step; the store keeps the most
// recent Capacity samples and condenses every WindowSize consecutive
// samples into a window summary — min, max, mean, and a confidence
// interval computed with the internal/accuracy error model, the same
// dispersion interval a /measure response carries.
//
// The store is deliberately not concurrency-safe: a session owns its
// store and serializes access through its own mutex, so the ring never
// pays for locking twice. Everything here is pure, allocation-frugal
// arithmetic — appending a sample is O(1) and aggregating a window is
// one pass over WindowSize values — which is what lets a registry run
// many sessions without the store showing up in profiles (see the
// package benchmarks).
package tsdb

import (
	"fmt"

	"repro/internal/accuracy"
)

// Sample is one observation of a counter at a virtual-time step.
type Sample struct {
	// Step is the 0-based sample index within the session.
	Step int `json:"step"`
	// Time is the virtual timestamp: cumulative simulated cycles at
	// the end of the step's measurement.
	Time float64 `json:"time"`
	// Raw is the uncorrected counter delta.
	Raw float64 `json:"raw"`
	// Value is the corrected estimate (raw minus calibrated overhead).
	Value float64 `json:"value"`
}

// Window condenses WindowSize consecutive samples.
type Window struct {
	// Index is the 0-based window sequence number.
	Index int
	// FirstStep and LastStep bound the samples the window covers.
	FirstStep int
	LastStep  int
	// Start and End are the virtual timestamps of the first and last
	// covered samples.
	Start float64
	End   float64
	// Min and Max bound the corrected values in the window.
	Min float64
	Max float64
	// Est is the window's corrected estimate: the mean of the values
	// with the dispersion confidence interval of internal/accuracy.
	Est accuracy.Estimate
}

// Config sizes a store.
type Config struct {
	// Capacity is how many samples the ring retains. Must be positive.
	Capacity int
	// WindowSize is how many consecutive samples one window condenses.
	// Must be at least 2, so the window's dispersion is observable.
	WindowSize int
	// WindowCapacity is how many window summaries the ring retains.
	// Zero means enough to cover Capacity samples plus one.
	WindowCapacity int
	// Confidence is the two-sided level of window intervals. Zero means
	// accuracy.DefaultConfidence.
	Confidence float64
}

// Store is the windowed ring-buffer time series of one session.
type Store struct {
	cfg Config

	samples []Sample // ring
	head    int      // index of oldest
	count   int
	total   int // samples appended ever

	windows []Window // ring
	whead   int
	wcount  int
	wtotal  int // windows completed ever

	pending []Sample // samples of the in-progress window
}

// New builds an empty store, validating the configuration.
func New(cfg Config) (*Store, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("tsdb: capacity must be positive (got %d)", cfg.Capacity)
	}
	if cfg.WindowSize < 2 {
		return nil, fmt.Errorf("tsdb: window size must be at least 2 (got %d)", cfg.WindowSize)
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = accuracy.DefaultConfidence
	}
	if !(cfg.Confidence > 0 && cfg.Confidence < 1) {
		return nil, fmt.Errorf("tsdb: confidence must be in (0, 1) (got %v)", cfg.Confidence)
	}
	if cfg.WindowCapacity <= 0 {
		cfg.WindowCapacity = cfg.Capacity/cfg.WindowSize + 1
	}
	return &Store{
		cfg:     cfg,
		samples: make([]Sample, cfg.Capacity),
		windows: make([]Window, cfg.WindowCapacity),
		pending: make([]Sample, 0, cfg.WindowSize),
	}, nil
}

// Append adds one sample. When the sample completes a window, the
// window summary is returned with ok true.
func (st *Store) Append(p Sample) (w Window, ok bool) {
	tail := (st.head + st.count) % len(st.samples)
	st.samples[tail] = p
	if st.count < len(st.samples) {
		st.count++
	} else {
		st.head = (st.head + 1) % len(st.samples)
	}
	st.total++

	st.pending = append(st.pending, p)
	if len(st.pending) < st.cfg.WindowSize {
		return Window{}, false
	}
	w = st.aggregate()
	st.pending = st.pending[:0]

	wtail := (st.whead + st.wcount) % len(st.windows)
	st.windows[wtail] = w
	if st.wcount < len(st.windows) {
		st.wcount++
	} else {
		st.whead = (st.whead + 1) % len(st.windows)
	}
	st.wtotal++
	return w, true
}

// aggregate condenses the pending samples into one window summary.
func (st *Store) aggregate() Window {
	first, last := st.pending[0], st.pending[len(st.pending)-1]
	w := Window{
		Index:     st.wtotal,
		FirstStep: first.Step,
		LastStep:  last.Step,
		Start:     first.Time,
		End:       last.Time,
		Min:       first.Value,
		Max:       first.Value,
	}
	values := make([]float64, len(st.pending))
	for i, p := range st.pending {
		values[i] = p.Value
		if p.Value < w.Min {
			w.Min = p.Value
		}
		if p.Value > w.Max {
			w.Max = p.Value
		}
	}
	// The samples are already overhead-corrected, so the window estimate
	// applies no further correction — FromRuns contributes the mean and
	// the dispersion interval. The error is impossible by construction
	// (values is non-empty, confidence validated by New).
	w.Est, _ = accuracy.FromRuns(values, 0, st.cfg.Confidence)
	return w
}

// Len returns how many samples the ring currently holds.
func (st *Store) Len() int { return st.count }

// Total returns how many samples were ever appended.
func (st *Store) Total() int { return st.total }

// WindowTotal returns how many windows were ever completed.
func (st *Store) WindowTotal() int { return st.wtotal }

// Samples returns the retained samples, oldest first.
func (st *Store) Samples() []Sample {
	out := make([]Sample, st.count)
	for i := 0; i < st.count; i++ {
		out[i] = st.samples[(st.head+i)%len(st.samples)]
	}
	return out
}

// Windows returns the retained window summaries, oldest first.
func (st *Store) Windows() []Window {
	out := make([]Window, st.wcount)
	for i := 0; i < st.wcount; i++ {
		out[i] = st.windows[(st.whead+i)%len(st.windows)]
	}
	return out
}

// Latest returns the most recent sample, if any.
func (st *Store) Latest() (Sample, bool) {
	if st.count == 0 {
		return Sample{}, false
	}
	return st.samples[(st.head+st.count-1)%len(st.samples)], true
}
