package tsdb

import (
	"math"
	"testing"

	"repro/internal/accuracy"
)

func mustNew(t *testing.T, cfg Config) *Store {
	t.Helper()
	st, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return st
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Capacity: 0, WindowSize: 4},
		{Capacity: -1, WindowSize: 4},
		{Capacity: 8, WindowSize: 1},
		{Capacity: 8, WindowSize: 4, Confidence: 1.5},
		{Capacity: 8, WindowSize: 4, Confidence: -0.5},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v): want error, got nil", cfg)
		}
	}
}

// sample builds a test sample whose value encodes its step.
func sample(step int) Sample {
	return Sample{Step: step, Time: float64(step) * 100, Raw: float64(1000 + step), Value: float64(step)}
}

func TestRingRetainsNewest(t *testing.T) {
	st := mustNew(t, Config{Capacity: 4, WindowSize: 2})
	for i := 0; i < 10; i++ {
		st.Append(sample(i))
	}
	if st.Total() != 10 || st.Len() != 4 {
		t.Fatalf("Total=%d Len=%d, want 10, 4", st.Total(), st.Len())
	}
	got := st.Samples()
	for i, p := range got {
		if want := 6 + i; p.Step != want {
			t.Errorf("Samples()[%d].Step = %d, want %d", i, p.Step, want)
		}
	}
	latest, ok := st.Latest()
	if !ok || latest.Step != 9 {
		t.Errorf("Latest() = %+v, %v; want step 9", latest, ok)
	}
}

func TestEmptyStore(t *testing.T) {
	st := mustNew(t, Config{Capacity: 4, WindowSize: 2})
	if _, ok := st.Latest(); ok {
		t.Error("Latest() on empty store reported ok")
	}
	if n := len(st.Samples()); n != 0 {
		t.Errorf("Samples() on empty store has %d entries", n)
	}
	if n := len(st.Windows()); n != 0 {
		t.Errorf("Windows() on empty store has %d entries", n)
	}
}

func TestWindowEmission(t *testing.T) {
	st := mustNew(t, Config{Capacity: 64, WindowSize: 4})
	var windows []Window
	for i := 0; i < 11; i++ {
		w, ok := st.Append(sample(i))
		if wantOK := (i+1)%4 == 0; ok != wantOK {
			t.Fatalf("Append(step %d): window emitted = %v, want %v", i, ok, wantOK)
		}
		if ok {
			windows = append(windows, w)
		}
	}
	if len(windows) != 2 || st.WindowTotal() != 2 {
		t.Fatalf("got %d windows (total %d), want 2", len(windows), st.WindowTotal())
	}
	w := windows[1]
	if w.Index != 1 || w.FirstStep != 4 || w.LastStep != 7 {
		t.Errorf("window = %+v, want index 1 covering steps 4-7", w)
	}
	if w.Start != 400 || w.End != 700 {
		t.Errorf("window span = [%v, %v], want [400, 700]", w.Start, w.End)
	}
	if w.Min != 4 || w.Max != 7 {
		t.Errorf("window min/max = %v/%v, want 4/7", w.Min, w.Max)
	}
}

// TestWindowEstimateMatchesAccuracy pins the window estimate to the
// accuracy package's dispersion interval: same values, same answer.
func TestWindowEstimateMatchesAccuracy(t *testing.T) {
	st := mustNew(t, Config{Capacity: 16, WindowSize: 4, Confidence: 0.9})
	values := []float64{10, 12, 11, 14}
	var got Window
	for i, v := range values {
		p := sample(i)
		p.Value = v
		if w, ok := st.Append(p); ok {
			got = w
		}
	}
	want, err := accuracy.FromRuns(values, 0, 0.9)
	if err != nil {
		t.Fatalf("FromRuns: %v", err)
	}
	if got.Est.Corrected != want.Corrected || got.Est.CI != want.CI || got.Est.StdErr != want.StdErr {
		t.Errorf("window estimate = %+v, want %+v", got.Est, want)
	}
	if got.Est.Corrected != 11.75 {
		t.Errorf("window mean = %v, want 11.75", got.Est.Corrected)
	}
	if got.Est.CI.Width() <= 0 {
		t.Errorf("window CI has non-positive width: %+v", got.Est.CI)
	}
}

func TestWindowRingRetainsNewest(t *testing.T) {
	st := mustNew(t, Config{Capacity: 8, WindowSize: 2, WindowCapacity: 3})
	for i := 0; i < 20; i++ { // 10 windows through a 3-window ring
		st.Append(sample(i))
	}
	ws := st.Windows()
	if len(ws) != 3 || st.WindowTotal() != 10 {
		t.Fatalf("got %d windows retained (total %d), want 3 of 10", len(ws), st.WindowTotal())
	}
	for i, w := range ws {
		if want := 7 + i; w.Index != want {
			t.Errorf("Windows()[%d].Index = %d, want %d", i, w.Index, want)
		}
	}
}

func TestDefaultWindowCapacityCoversRing(t *testing.T) {
	st := mustNew(t, Config{Capacity: 64, WindowSize: 8})
	for i := 0; i < 64; i++ {
		st.Append(sample(i))
	}
	if len(st.Windows()) != 8 {
		t.Errorf("retained %d windows, want all 8 covering the ring", len(st.Windows()))
	}
}

func TestConstantSeriesHasPointInterval(t *testing.T) {
	st := mustNew(t, Config{Capacity: 8, WindowSize: 4})
	var w Window
	for i := 0; i < 4; i++ {
		p := sample(i)
		p.Value = 42
		w, _ = st.Append(p)
	}
	if w.Est.CI.Width() != 0 || w.Est.Corrected != 42 {
		t.Errorf("constant window estimate = %+v, want point interval at 42", w.Est)
	}
	if math.IsNaN(w.Est.StdErr) {
		t.Error("constant window produced NaN standard error")
	}
}

func BenchmarkStoreAppend(b *testing.B) {
	st, err := New(Config{Capacity: 4096, WindowSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Append(Sample{Step: i, Time: float64(i), Raw: float64(i), Value: float64(i % 97)})
	}
}

func BenchmarkWindowAggregate(b *testing.B) {
	st, err := New(Config{Capacity: 4096, WindowSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-fill all but one sample of a window, then complete it each
	// iteration: the benchmark isolates the aggregation cost.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 63; j++ {
			st.Append(Sample{Step: j, Value: float64(j)})
		}
		if _, ok := st.Append(Sample{Step: 63, Value: 63}); !ok {
			b.Fatal("window did not complete")
		}
	}
}
