package mpx

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

func loopProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("mpx-loop", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(iters, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	return b.Build()
}

// phasedProgram runs a plain loop followed by a memory loop: two phases
// with different instructions-per-cycle rates.
func phasedProgram(l1, l2 int64) *isa.Program {
	b := isa.NewBuilder("mpx-phased", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(l1, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Loop(l2, func(body *isa.Builder) {
		body.Emit(isa.Load(), isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	return b.Build()
}

func TestNewValidation(t *testing.T) {
	k := kernel.New(cpu.Core2Duo)
	if _, err := New(k, 2, nil); !errors.Is(err, ErrNoEvents) {
		t.Errorf("no events: %v", err)
	}
	if _, err := New(k, 0, []cpu.Event{cpu.EventInstrRetired}); !errors.Is(err, ErrNoCounters) {
		t.Errorf("zero counters: %v", err)
	}
	if _, err := New(k, 5, []cpu.Event{cpu.EventInstrRetired}); err == nil {
		t.Error("too many hw counters accepted")
	}
	if _, err := New(k, 2, []cpu.Event{cpu.Event(99)}); err == nil {
		t.Error("bad event accepted")
	}
}

func TestGrouping(t *testing.T) {
	k := kernel.New(cpu.Core2Duo)
	m, err := New(k, 2, []cpu.Event{
		cpu.EventInstrRetired, cpu.EventCoreCycles,
		cpu.EventBrMispRetired, cpu.EventICacheMiss,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Groups() != 2 {
		t.Errorf("groups = %d, want 2", m.Groups())
	}
	// 3 events on 2 counters -> 2 groups (2 + 1).
	m2, err := New(k, 2, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles, cpu.EventBrMispRetired})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Groups() != 2 {
		t.Errorf("3-on-2 groups = %d", m2.Groups())
	}
}

// TestDedicatedDegenerate: events <= counters means one group, full
// active fraction, exact counts.
func TestDedicatedDegenerate(t *testing.T) {
	k := kernel.New(cpu.Athlon64X2)
	m, err := New(k, 2, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles})
	if err != nil {
		t.Fatal(err)
	}
	if m.Groups() != 1 {
		t.Fatalf("groups = %d", m.Groups())
	}
	const iters = 2_000_000
	est, err := m.Run(loopProgram(iters), 3)
	if err != nil {
		t.Fatal(err)
	}
	wantInstr := float64(1 + 3*iters + 1)
	// Plus tick handler kernel instructions (counting is user+kernel).
	if est[0].Value < wantInstr || est[0].Value > wantInstr*1.01 {
		t.Errorf("dedicated instr estimate = %v, want ~%v", est[0].Value, wantInstr)
	}
	if math.Abs(est[0].ActiveFraction-1) > 1e-9 {
		t.Errorf("active fraction = %v, want 1", est[0].ActiveFraction)
	}
}

// TestMultiplexedStationary: on a stationary workload the interpolation
// recovers the true count within a few percent despite each group
// seeing only half the run.
func TestMultiplexedStationary(t *testing.T) {
	k := kernel.New(cpu.Core2Duo)
	m, err := New(k, 2, []cpu.Event{
		cpu.EventInstrRetired, cpu.EventCoreCycles,
		cpu.EventBrMispRetired, cpu.EventICacheMiss,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Long stationary loop: ~25M cycles = ~10 tick rotations.
	const iters = 25_000_000
	est, err := m.Run(loopProgram(iters), 5)
	if err != nil {
		t.Fatal(err)
	}
	instr := est[0]
	if instr.ActiveFraction < 0.3 || instr.ActiveFraction > 0.7 {
		t.Errorf("active fraction = %v, want ~0.5", instr.ActiveFraction)
	}
	want := float64(1 + 3*iters)
	rel := (instr.Value - want) / want
	if math.Abs(rel) > 0.05 {
		t.Errorf("stationary estimate error = %.1f%%, want within 5%%", rel*100)
	}
}

// TestMultiplexedPhased: phases misaligned with the rotation bias the
// estimate; the error must exceed the stationary case.
func TestMultiplexedPhased(t *testing.T) {
	run := func(prog *isa.Program, want float64) float64 {
		k := kernel.New(cpu.Core2Duo)
		m, err := New(k, 1, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles})
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.Run(prog, 9)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(est[0].Value-want) / want
	}
	// Phase A: 3M instr at ~3 instr/cycle; phase B: 4M instr at lower
	// IPC. Total ~7M instructions across ~2-4 rotations.
	phased := run(phasedProgram(1_000_000, 1_000_000), float64(1+3*1_000_000+4*1_000_000))
	stationary := run(loopProgram(2_400_000), float64(1+3*2_400_000))
	if phased <= stationary {
		t.Errorf("phased error %.3f should exceed stationary error %.3f", phased, stationary)
	}
}

// TestRunIsolation: consecutive runs must not leak accumulators.
func TestRunIsolation(t *testing.T) {
	k := kernel.New(cpu.Athlon64X2)
	m, err := New(k, 1, []cpu.Event{cpu.EventInstrRetired})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Run(loopProgram(100_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(loopProgram(100_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Observed != b[0].Observed {
		t.Errorf("runs differ: %d vs %d", a[0].Observed, b[0].Observed)
	}
}
