package mpx

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// alternatingProgram interleaves ALU-loop phases (3 instructions per
// iteration, high IPC) with load-loop phases (4 instructions per
// iteration, lower IPC): `phases` segments of `iters` iterations each,
// alternating starting with the ALU phase. The analytic instruction
// count is 1 (init) + per-phase body counts + 1 (halt).
func alternatingProgram(iters int64, phases int) (*isa.Program, float64) {
	b := isa.NewBuilder("mpx-alternating", 0x4000)
	b.Emit(isa.ALU())
	want := float64(1)
	for p := 0; p < phases; p++ {
		if p%2 == 0 {
			b.Loop(iters, func(body *isa.Builder) {
				body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
			})
			want += float64(3 * iters)
		} else {
			b.Loop(iters, func(body *isa.Builder) {
				body.Emit(isa.Load(), isa.ALU(), isa.ALU(), isa.Branch(0, true))
			})
			want += float64(4 * iters)
		}
	}
	b.Emit(isa.Halt())
	return b.Build(), want + 1
}

// mpxRelError measures prog with the given rotation layout and returns
// the signed relative error of the first event's estimate against the
// analytic truth.
func mpxRelError(t *testing.T, events []cpu.Event, hw int, prog *isa.Program, want float64, seed uint64) float64 {
	t.Helper()
	k := kernel.New(cpu.Core2Duo)
	m, err := New(k, hw, events)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	est, err := m.Run(prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	return (est[0].Value - want) / want
}

// TestPhasedInterpolationBias is the Section 9 failure mode the
// package doc promises: interpolation is exact only for stationary
// rates, so a workload whose phases are long relative to the rotation
// period biases the estimate, while the same instruction mix chopped
// into many short phases averages back toward stationarity.
func TestPhasedInterpolationBias(t *testing.T) {
	events := []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles}
	const totalIters = 12_000_000

	// Few long phases: each phase spans roughly a rotation period, the
	// worst alignment for a two-group rotation.
	longProg, longWant := alternatingProgram(totalIters/4, 4)
	longErr := math.Abs(mpxRelError(t, events, 1, longProg, longWant, 7))

	// Same mix in 60 short phases: each phase is a small fraction of a
	// rotation window, so every window samples both phases.
	shortProg, shortWant := alternatingProgram(totalIters/60, 60)
	shortErr := math.Abs(mpxRelError(t, events, 1, shortProg, shortWant, 7))

	// Stationary control: one homogeneous phase.
	statProg, statWant := alternatingProgram(totalIters, 1)
	statErr := math.Abs(mpxRelError(t, events, 1, statProg, statWant, 7))

	if longErr <= shortErr {
		t.Errorf("long-phase error %.4f not above short-phase error %.4f", longErr, shortErr)
	}
	if longErr <= statErr {
		t.Errorf("long-phase error %.4f not above stationary error %.4f", longErr, statErr)
	}
	if shortErr > 0.05 {
		t.Errorf("short-phase error %.4f should be near stationary (phases average out)", shortErr)
	}
}

// TestPhasedRotationOrderMatters: on a non-stationary workload the
// estimate depends on *which rotation slot* an event occupies — the
// same event measured in group 0 versus group 1 sees different phases.
// On a stationary workload the slot is irrelevant. This is the
// scheduling hazard the planner's anchor pinning works around: only a
// full-time or every-group event gives a slot-independent reference.
func TestPhasedRotationOrderMatters(t *testing.T) {
	const iters = 6_000_000
	phased, phasedWant := alternatingProgram(iters/2, 2)
	stat, statWant := alternatingProgram(iters, 1)

	diff := func(prog *isa.Program, want float64) float64 {
		first := mpxRelError(t, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles}, 1, prog, want, 11)
		second := mpxRelError(t, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles, cpu.EventBrMispRetired}, 1, prog, want, 11)
		return math.Abs(first - second)
	}
	phasedDiff := diff(phased, phasedWant)
	statDiff := diff(stat, statWant)
	if phasedDiff <= statDiff {
		t.Errorf("rotation-slot sensitivity on phased workload (%.4f) not above stationary (%.4f)",
			phasedDiff, statDiff)
	}
}

// TestPhasedActiveFractionsCoverRun: however the phases land, the
// rotation must account for the whole run — per-event active fractions
// of a two-group rotation sum to ~1 across groups, and every fraction
// stays in (0, 1).
func TestPhasedActiveFractionsCoverRun(t *testing.T) {
	prog, _ := alternatingProgram(3_000_000, 4)
	k := kernel.New(cpu.Core2Duo)
	m, err := New(k, 1, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	est, err := m.Run(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range est {
		if e.ActiveFraction <= 0 || e.ActiveFraction >= 1 {
			t.Errorf("%s: active fraction %v outside (0, 1)", e.Event, e.ActiveFraction)
		}
		sum += e.ActiveFraction
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("active fractions sum to %v, want ~1", sum)
	}
}

// TestPhasedObservedBelowTruth: each group's raw observation is only
// its windows' share; the interpolated value must exceed the observed
// count on a multi-group rotation (the extrapolated portion is what
// accuracy.Multiplex books as the mpx-extrapolation term).
func TestPhasedObservedBelowTruth(t *testing.T) {
	prog, want := alternatingProgram(3_000_000, 3)
	k := kernel.New(cpu.Core2Duo)
	m, err := New(k, 1, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	est, err := m.Run(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	instr := est[0]
	if float64(instr.Observed) >= want {
		t.Errorf("observed %d not below truth %v on a rotating schedule", instr.Observed, want)
	}
	if instr.Value <= float64(instr.Observed) {
		t.Errorf("interpolated %v not above observed %d", instr.Value, instr.Observed)
	}
}
