// Package mpx implements counter multiplexing with time interpolation:
// measuring more events than the processor has counter registers by
// time-sharing the registers and scaling each event's observed count by
// the fraction of time its group was active.
//
// This is the accuracy problem of Mytkowicz, Sweeney, Hauswirth, and
// Diwan's MICRO'07 work, which the paper's Section 9 situates next to
// its own: multiplexing trades full-time observation for coverage, and
// the interpolation is exact only if the event rate is stationary.
// Workloads with phases misaligned to the rotation period produce
// estimation errors this package's experiment quantifies.
package mpx

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// Estimate is the multiplexed measurement of one event.
type Estimate struct {
	// Event is the estimated event.
	Event cpu.Event
	// Observed is the raw count accumulated while the event's group
	// occupied hardware counters.
	Observed int64
	// ActiveFraction is the fraction of run cycles the group was live.
	ActiveFraction float64
	// Value is the time-interpolated estimate: Observed scaled by the
	// inverse active fraction.
	Value float64
}

// Multiplexer time-shares hardware counters among event groups,
// rotating on every kernel timer tick (the granularity perfmon2's
// event-set switching uses).
type Multiplexer struct {
	k      *kernel.Kernel
	events []cpu.Event
	hw     int
	groups [][]int // event indices per rotation group

	active       bool
	cur          int
	lastSwitch   float64
	accum        []float64
	activeCycles []float64

	listener int
	closed   bool

	// Runner is the execution engine for multiplexed runs; nil uses
	// the core's interpreter directly. Rotation happens on timer ticks,
	// which both engines deliver at identical cycle times, so estimates
	// are byte-identical across engines.
	Runner cpu.Runner
}

// Errors reported by New.
var (
	ErrNoEvents   = errors.New("mpx: no events requested")
	ErrNoCounters = errors.New("mpx: hardware counter count must be positive")
)

// New builds a multiplexer for the given events using hw hardware
// counters. Requesting at most hw events degenerates to dedicated
// counting (one group, no rotation).
func New(k *kernel.Kernel, hw int, events []cpu.Event) (*Multiplexer, error) {
	if len(events) == 0 {
		return nil, ErrNoEvents
	}
	if hw <= 0 {
		return nil, ErrNoCounters
	}
	if hw > k.Model().NumProgrammable {
		return nil, fmt.Errorf("mpx: %d hardware counters requested but %s has %d",
			hw, k.Model().Name, k.Model().NumProgrammable)
	}
	for _, ev := range events {
		if !cpu.SupportsEvent(k.Model().Arch, ev) {
			return nil, fmt.Errorf("mpx: event %s not supported on %s", ev, k.Model().Arch)
		}
	}
	m := &Multiplexer{
		k:            k,
		events:       append([]cpu.Event(nil), events...),
		hw:           hw,
		accum:        make([]float64, len(events)),
		activeCycles: make([]float64, len(events)),
	}
	for start := 0; start < len(events); start += hw {
		end := start + hw
		if end > len(events) {
			end = len(events)
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		m.groups = append(m.groups, idx)
	}
	m.listener = k.AddTickListener(m.onTick)
	return m, nil
}

// Groups returns the number of rotation groups.
func (m *Multiplexer) Groups() int { return len(m.groups) }

// Close detaches the multiplexer from the kernel's timer tick. A
// closed multiplexer must not be Run again. Services that borrow a
// pooled system for a multiplexed measurement must Close before
// returning the system, or the stale rotation callback would keep
// firing under later requests.
func (m *Multiplexer) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.k.RemoveTickListener(m.listener)
}

// ErrClosed reports a Run on a multiplexer whose tick listener was
// already detached.
var ErrClosed = errors.New("mpx: multiplexer is closed")

// Run measures one program execution and returns the per-event
// estimates.
func (m *Multiplexer) Run(prog *isa.Program, seed uint64) ([]Estimate, error) {
	if m.closed {
		return nil, ErrClosed
	}
	c := m.k.Core
	for i := range m.accum {
		m.accum[i] = 0
		m.activeCycles[i] = 0
	}
	m.cur = 0
	if err := m.installGroup(0); err != nil {
		return nil, err
	}
	m.active = true
	m.lastSwitch = c.Cycles
	start := c.Cycles

	c.SeedRun(seed)
	err := m.runProg(c, prog)
	m.active = false
	m.harvest()
	m.disableGroup(m.cur)
	if err != nil {
		return nil, err
	}

	total := c.Cycles - start
	out := make([]Estimate, len(m.events))
	for i, ev := range m.events {
		e := Estimate{Event: ev, Observed: int64(m.accum[i])}
		if total > 0 {
			e.ActiveFraction = m.activeCycles[i] / total
		}
		if e.ActiveFraction > 0 {
			e.Value = m.accum[i] / e.ActiveFraction
		}
		out[i] = e
	}
	return out, nil
}

// onTick rotates the active group (no-op between runs).
func (m *Multiplexer) onTick() {
	if !m.active || len(m.groups) < 2 {
		return
	}
	m.harvest()
	m.disableGroup(m.cur)
	m.cur = (m.cur + 1) % len(m.groups)
	// Ignore error: the group was validated by New.
	_ = m.installGroup(m.cur)
}

// harvest folds the live hardware counts and active time into the
// current group's events.
func (m *Multiplexer) harvest() {
	c := m.k.Core
	now := c.Cycles
	for slot, evIdx := range m.groups[m.cur] {
		v, err := c.PMU.Value(slot)
		if err != nil {
			continue
		}
		m.accum[evIdx] += float64(v)
		m.activeCycles[evIdx] += now - m.lastSwitch
	}
	m.lastSwitch = now
}

// installGroup programs and enables the group's events on counters
// 0..len(group)-1.
func (m *Multiplexer) installGroup(g int) error {
	c := m.k.Core
	for slot, evIdx := range m.groups[g] {
		if err := c.PMU.Configure(slot, cpu.CounterConfig{
			Event: m.events[evIdx], User: true, OS: true,
		}); err != nil {
			return err
		}
	}
	mask := (uint64(1) << uint(len(m.groups[g]))) - 1
	c.PMU.Reset(mask)
	c.PMU.Enable(mask)
	return nil
}

// disableGroup stops the group's counters.
func (m *Multiplexer) disableGroup(g int) {
	mask := (uint64(1) << uint(len(m.groups[g]))) - 1
	m.k.Core.PMU.Disable(mask)
	m.k.Core.PMU.Reset(mask)
}

// runProg executes the measured program on the configured engine.
func (m *Multiplexer) runProg(c *cpu.Core, prog *isa.Program) error {
	if m.Runner != nil {
		return m.Runner.RunProgram(c, prog)
	}
	c.NestedRun = nil
	return c.Run(prog)
}
