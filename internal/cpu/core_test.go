package cpu

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// newTestCore returns a K8 core with counter 0 counting user+kernel
// instructions and counter 1 counting user-only instructions.
func newTestCore(t *testing.T) *Core {
	t.Helper()
	c := NewCore(Athlon64X2)
	if err := c.PMU.Configure(0, CounterConfig{Event: EventInstrRetired, User: true, OS: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.PMU.Configure(1, CounterConfig{Event: EventInstrRetired, User: true}); err != nil {
		t.Fatal(err)
	}
	c.PMU.Enable(0b11)
	return c
}

func TestRunCountsPlainProgram(t *testing.T) {
	c := newTestCore(t)
	p := isa.NewBuilder("p", 0x1000).ALUBlock(10).Emit(isa.Halt()).Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.PMU.Value(0); v != 11 { // 10 ALU + halt
		t.Errorf("counter = %d, want 11", v)
	}
	if c.RetiredUser != 11 || c.RetiredKernel != 0 {
		t.Errorf("retired = (%d user, %d kernel)", c.RetiredUser, c.RetiredKernel)
	}
	if c.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
}

func TestLoopBulkMatchesAnalyticalModel(t *testing.T) {
	// The paper's loop: 1 init + 3 instructions per iteration.
	for _, iters := range []int64{0, 1, 7, 100, 5000, 200000} {
		c := newTestCore(t)
		b := isa.NewBuilder("loop", 0x4000)
		b.Emit(isa.ALU())
		b.Loop(iters, func(body *isa.Builder) {
			body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
		})
		b.Emit(isa.Halt())
		if err := c.Run(b.Build()); err != nil {
			t.Fatal(err)
		}
		want := 1 + 3*iters + 1 // + halt
		if v, _ := c.PMU.Value(0); v != want {
			t.Errorf("iters=%d: counted %d instructions, want %d", iters, v, want)
		}
	}
}

// TestLoopBulkEquivalence: fast-forwarding must retire exactly the same
// instruction count as stepwise interpretation (the ablation of the
// DESIGN.md "loop fast-forward" design choice).
func TestLoopBulkEquivalence(t *testing.T) {
	run := func(stepwise bool, iters int64) (int64, int64) {
		c := newTestCore(t)
		b := isa.NewBuilder("loop", 0x4000)
		b.Emit(isa.ALU())
		if stepwise {
			// A capture-free RDTSC in the body makes it non-plain,
			// forcing the stepwise path.
			b.Loop(iters, func(body *isa.Builder) {
				body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
			})
		} else {
			b.Loop(iters, func(body *isa.Builder) {
				body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
			})
		}
		b.Emit(isa.Halt())
		p := b.Build()
		if stepwise {
			// Force stepwise by calling the internal path directly.
			c.Run(&isa.Program{Name: "warm", Code: []isa.Instr{isa.Halt()}})
			c2 := newTestCore(t)
			if err := c2.execLoopForTest(p, iters); err != nil {
				t.Fatal(err)
			}
			v, _ := c2.PMU.Value(0)
			return v, c2.RetiredUser
		}
		if err := c.Run(p); err != nil {
			t.Fatal(err)
		}
		v, _ := c.PMU.Value(0)
		return v, c.RetiredUser
	}
	for _, iters := range []int64{1, 10, 100, 1000} {
		bulkV, bulkR := run(false, iters)
		stepV, stepR := run(true, iters)
		if bulkV != stepV || bulkR != stepR {
			t.Errorf("iters=%d: bulk (%d,%d) != stepwise (%d,%d)", iters, bulkV, bulkR, stepV, stepR)
		}
	}
}

// execLoopForTest drives the stepwise loop path with the same program
// shape that Run would fast-forward.
func (c *Core) execLoopForTest(p *isa.Program, iters int64) error {
	c.Captures = c.Captures[:0]
	c.Mode = User
	// init instruction
	if err := c.exec1(p, 0, p.Code[0]); err != nil {
		return err
	}
	hdr := p.Code[1]
	body := p.Code[2 : 2+int(hdr.B)]
	if err := c.execLoopStepwise(p, 1, body, iters); err != nil {
		return err
	}
	// halt
	c.retire(1, ClassALU)
	return nil
}

func TestSyscallModeTransitions(t *testing.T) {
	c := newTestCore(t)
	handler := isa.NewBuilder("sys_test", 0xffff0000).ALUBlock(20).Emit(isa.SysRet()).Build()
	c.Syscalls[1] = handler

	p := isa.NewBuilder("p", 0x1000).
		Emit(isa.ALU(), isa.Syscall(1), isa.ALU(), isa.Halt()).Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	// user: alu + syscall + alu + halt = 4; kernel: 20 + sysret = 21
	if c.RetiredUser != 4 {
		t.Errorf("user retired = %d, want 4", c.RetiredUser)
	}
	if c.RetiredKernel != 21 {
		t.Errorf("kernel retired = %d, want 21", c.RetiredKernel)
	}
	both, _ := c.PMU.Value(0)
	userOnly, _ := c.PMU.Value(1)
	if both != 25 {
		t.Errorf("user+kernel counter = %d, want 25", both)
	}
	if userOnly != 4 {
		t.Errorf("user-only counter = %d, want 4", userOnly)
	}
	if c.Mode != User {
		t.Error("mode not restored after syscall")
	}
}

func TestUnregisteredSyscall(t *testing.T) {
	c := newTestCore(t)
	p := isa.NewBuilder("p", 0).Emit(isa.Syscall(42), isa.Halt()).Build()
	if err := c.Run(p); !errors.Is(err, ErrBadSyscall) {
		t.Errorf("err = %v, want ErrBadSyscall", err)
	}
}

func TestPrivilegedInstructionFaults(t *testing.T) {
	c := newTestCore(t)
	p := isa.NewBuilder("p", 0).Emit(isa.WRMSR(isa.MSREnable, 1), isa.Halt()).Build()
	if err := c.Run(p); !errors.Is(err, ErrPrivilege) {
		t.Errorf("wrmsr in user mode: err = %v, want ErrPrivilege", err)
	}
	p2 := isa.NewBuilder("p2", 0).Emit(isa.RDMSR(7), isa.Halt()).Build()
	if err := c.Run(p2); !errors.Is(err, ErrPrivilege) {
		t.Errorf("rdmsr in user mode: err = %v, want ErrPrivilege", err)
	}
}

func TestStrayReturns(t *testing.T) {
	c := newTestCore(t)
	if err := c.Run(isa.NewBuilder("p", 0).Emit(isa.SysRet()).Build()); !errors.Is(err, ErrStrayReturn) {
		t.Errorf("stray sysret: %v", err)
	}
	if err := c.Run(isa.NewBuilder("p", 0).Emit(isa.IRet()).Build()); !errors.Is(err, ErrStrayReturn) {
		t.Errorf("stray iret: %v", err)
	}
}

func TestWRMSRInKernelControlsCounters(t *testing.T) {
	c := newTestCore(t)
	handler := isa.NewBuilder("sys_ctl", 0xffff0000).
		Emit(isa.WRMSR(isa.MSRReset, 0b11), isa.WRMSR(isa.MSRDisable, 0b11), isa.SysRet()).Build()
	c.Syscalls[2] = handler
	p := isa.NewBuilder("p", 0x1000).
		ALUBlock(50).
		Emit(isa.Syscall(2)).
		ALUBlock(30). // counters disabled: not counted
		Emit(isa.Halt()).Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	both, _ := c.PMU.Value(0)
	// Control writes take effect at retirement: the reset zeroes the
	// counter, then the disabling WRMSR retires under the *old*
	// (enabled) configuration — so it is the one and only instruction
	// counted after the reset. The 30 user ALUs after the syscall are
	// not counted. Symmetrically, an enabling WRMSR retires while still
	// disabled and is never counted (see the pattern-window tests in
	// internal/core).
	if both != 1 {
		t.Errorf("counter after reset+disable = %d, want 1 (the disabling WRMSR itself)", both)
	}
}

func TestRDPMCCaptures(t *testing.T) {
	c := newTestCore(t)
	p := isa.NewBuilder("p", 0x1000).
		Emit(isa.RDPMC(0, 0)).
		ALUBlock(10).
		Emit(isa.RDPMC(0, 1)).
		Emit(isa.Halt()).Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(c.Captures) != 2 {
		t.Fatalf("captures = %d, want 2", len(c.Captures))
	}
	delta := c.Captures[1].Value - c.Captures[0].Value
	// Window: rest of rdpmc0 after capture... the capture excludes the
	// reading instruction itself, so the window contains rdpmc0 itself
	// retiring + 10 ALU = 11.
	if delta != 11 {
		t.Errorf("capture delta = %d, want 11", delta)
	}
	if c.Captures[0].Mode != User {
		t.Error("capture mode should be user")
	}
}

func TestRDTSCCapture(t *testing.T) {
	c := newTestCore(t)
	p := isa.NewBuilder("p", 0x1000).
		Emit(isa.RDTSC(0)).
		ALUBlock(100).
		Emit(isa.RDTSC(1)).
		Emit(isa.Halt()).Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(c.Captures) != 2 {
		t.Fatalf("captures = %d", len(c.Captures))
	}
	if c.Captures[0].Counter != TSCCounter || c.Captures[1].Counter != TSCCounter {
		t.Error("TSC captures should be tagged TSCCounter")
	}
	if c.Captures[1].Value <= c.Captures[0].Value {
		t.Error("TSC must advance")
	}
}

func TestVirtualReadHook(t *testing.T) {
	c := newTestCore(t)
	c.VirtualRead = func(counter int) int64 { return 12345 + int64(counter) }
	p := isa.NewBuilder("p", 0).Emit(isa.RDPMC(1, 0), isa.Halt()).Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.Captures[0].Value != 12346 {
		t.Errorf("virtual read = %d, want 12346", c.Captures[0].Value)
	}
}

func TestTimerInterruptAttribution(t *testing.T) {
	c := newTestCore(t)
	handler := isa.NewBuilder("tick", 0xffffa000).ALUBlock(500).Emit(isa.IRet()).Build()
	c.InstallTimer(1000, handler) // 2.2e6 cycle period on K8
	c.SeedRun(7)

	// A loop long enough to cross several ticks: 5M iterations at >=2
	// cycles/iter = >=10M cycles = >=4 ticks.
	b := isa.NewBuilder("loop", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(5_000_000, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	if err := c.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	if c.TimerDeliveries < 4 {
		t.Fatalf("timer deliveries = %d, want >= 4", c.TimerDeliveries)
	}
	both, _ := c.PMU.Value(0)
	userOnly, _ := c.PMU.Value(1)
	wantUser := int64(1 + 3*5_000_000 + 1)
	kernelPart := both - wantUser
	wantKernel := int64(c.TimerDeliveries) * 501 // 500 ALU + iret
	if kernelPart != wantKernel {
		t.Errorf("kernel-attributed instructions = %d, want %d", kernelPart, wantKernel)
	}
	// User-only counter may be skewed by a few instructions per tick.
	skew := userOnly - wantUser
	maxSkew := int64(c.TimerDeliveries) * 6
	if skew < -maxSkew || skew > maxSkew {
		t.Errorf("user skew = %d, |skew| must be <= %d", skew, maxSkew)
	}
}

func TestTimerPhaseDeterminism(t *testing.T) {
	run := func(seed uint64) (int64, float64) {
		c := newTestCore(t)
		handler := isa.NewBuilder("tick", 0xffffa000).ALUBlock(100).Emit(isa.IRet()).Build()
		c.InstallTimer(1000, handler)
		c.SeedRun(seed)
		b := isa.NewBuilder("loop", 0x4000)
		b.Emit(isa.ALU())
		b.Loop(2_000_000, func(body *isa.Builder) {
			body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
		})
		b.Emit(isa.Halt())
		if err := c.Run(b.Build()); err != nil {
			t.Fatal(err)
		}
		v, _ := c.PMU.Value(0)
		return v, c.Cycles
	}
	v1, cy1 := run(11)
	v2, cy2 := run(11)
	v3, _ := run(12)
	if v1 != v2 || cy1 != cy2 {
		t.Error("same seed must reproduce exactly")
	}
	if v1 == v3 {
		t.Log("different seeds produced same count (possible but unlikely); not fatal")
	}
}

func TestIterCyclesPlacement(t *testing.T) {
	c := NewCore(Athlon64X2)
	// K8: aligned body -> 2 cycles/iter; straddling -> 3 (Figure 11).
	aligned := c.IterCycles(0x1000, 10, 0)
	if aligned != 2.0 {
		t.Errorf("aligned K8 loop = %v cycles/iter, want 2", aligned)
	}
	straddle := c.IterCycles(0x100a, 10, 0) // 10+10 > 16
	if straddle != 3.0 {
		t.Errorf("straddling K8 loop = %v cycles/iter, want 3", straddle)
	}

	// NetBurst adds placement quirks: the range must cover [1.5, 4].
	pd := NewCore(PentiumD)
	lo, hi := 1e9, 0.0
	for addr := uint64(0x1000); addr < 0x1100; addr++ {
		v := pd.IterCycles(addr, 10, 0)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 1.5 || hi > 4.0 || hi-lo < 1.0 {
		t.Errorf("PD iteration cycles range [%v, %v], want within [1.5,4] and spread >= 1", lo, hi)
	}
}

func TestIterCyclesDeterministic(t *testing.T) {
	f := func(addr uint64) bool {
		c := NewCore(PentiumD)
		return c.IterCycles(addr, 10, 0) == c.IterCycles(addr, 10, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarWorkBounded(t *testing.T) {
	c := newTestCore(t)
	c.SeedRun(3)
	p := isa.NewBuilder("p", 0).Emit(isa.VarWork(4, 0), isa.Halt()).Build()
	for i := 0; i < 50; i++ {
		c.SeedRun(uint64(i))
		if err := c.Run(p); err != nil {
			t.Fatal(err)
		}
		c.PMU.Reset(0b11)
	}
	// Just verify it runs and retires at least the baseline.
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.RetiredUser < 2 || c.RetiredUser > 6 {
		t.Errorf("varwork retired %d, want in [2,6]", c.RetiredUser)
	}
}

func TestBranchSemantics(t *testing.T) {
	c := newTestCore(t)
	// Forward taken branch skips one instruction.
	p := isa.NewBuilder("p", 0).
		Emit(isa.Branch(2, true)). // 0: jump to 2
		Emit(isa.ALU()).           // 1: skipped
		Emit(isa.Halt()).          // 2
		Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.RetiredUser != 2 { // branch + halt
		t.Errorf("retired = %d, want 2", c.RetiredUser)
	}
}

func TestColdFrontEndEvents(t *testing.T) {
	c := NewCore(Athlon64X2)
	if err := c.PMU.Configure(0, CounterConfig{Event: EventICacheMiss, User: true, OS: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.PMU.Configure(1, CounterConfig{Event: EventITLBMiss, User: true, OS: true}); err != nil {
		t.Fatal(err)
	}
	c.PMU.Enable(0b11)
	// 64 ALU x 4 bytes = 256 bytes = 4+ icache lines, 1 page.
	p := isa.NewBuilder("p", 0x1000).ALUBlock(64).Emit(isa.Halt()).Build()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	ic, _ := c.PMU.Value(0)
	tlb, _ := c.PMU.Value(1)
	if ic < 4 {
		t.Errorf("icache misses = %d, want >= 4", ic)
	}
	if tlb != 1 {
		t.Errorf("itlb misses = %d, want 1", tlb)
	}
}

func TestNestingLimit(t *testing.T) {
	c := newTestCore(t)
	// A syscall handler that performs another syscall, recursively.
	h := isa.NewBuilder("sys_rec", 0xffff0000).Emit(isa.Syscall(3), isa.SysRet()).Build()
	c.Syscalls[3] = h
	p := isa.NewBuilder("p", 0).Emit(isa.Syscall(3), isa.Halt()).Build()
	if err := c.Run(p); !errors.Is(err, ErrNesting) {
		t.Errorf("err = %v, want ErrNesting", err)
	}
}

func TestModelByTag(t *testing.T) {
	for _, tag := range []string{"PD", "CD", "K8"} {
		m, err := ModelByTag(tag)
		if err != nil || m.Tag != tag {
			t.Errorf("ModelByTag(%q) = %v, %v", tag, m, err)
		}
	}
	if _, err := ModelByTag("P6"); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestArchString(t *testing.T) {
	if NetBurst.String() != "NetBurst" || Core2.String() != "Core2" || K8.String() != "K8" {
		t.Error("arch names wrong")
	}
	if Arch(9).String() == "" {
		t.Error("unknown arch must render")
	}
	if User.String() != "user" || Kernel.String() != "kernel" {
		t.Error("mode names wrong")
	}
}
