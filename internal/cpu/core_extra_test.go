package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// TestDCacheMissModel: a memory-walking loop misses the data cache once
// per 64-byte line (8 eight-byte elements).
func TestDCacheMissModel(t *testing.T) {
	c := NewCore(Athlon64X2)
	if err := c.PMU.Configure(0, CounterConfig{Event: EventDCacheMiss, User: true, OS: true}); err != nil {
		t.Fatal(err)
	}
	c.PMU.Enable(1)
	const iters = 80_000
	b := isa.NewBuilder("array", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(iters, func(body *isa.Builder) {
		body.Emit(isa.Load(), isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	if err := c.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	misses, _ := c.PMU.Value(0)
	want := int64(iters / 8)
	if misses < want-10 || misses > want+10 {
		t.Errorf("dcache misses = %d, want ~%d", misses, want)
	}
}

// TestOverflowDetection: the PMU reports period crossings exactly.
func TestOverflowDetection(t *testing.T) {
	p := NewPMU(Athlon64X2)
	if err := p.Configure(0, CounterConfig{Event: EventInstrRetired, User: true, OverflowPeriod: 100}); err != nil {
		t.Fatal(err)
	}
	p.Enable(1)
	p.AddInstr(User, 99)
	if got := p.TakeOverflows(); got != nil {
		t.Errorf("no crossing expected, got %v", got)
	}
	p.AddInstr(User, 1) // exactly at 100
	ovf := p.TakeOverflows()
	if len(ovf) != 1 || ovf[0].Crossings != 1 || ovf[0].Counter != 0 {
		t.Errorf("ovf = %v", ovf)
	}
	p.AddInstr(User, 350) // 450: crosses 200, 300, 400
	ovf = p.TakeOverflows()
	if len(ovf) != 1 || ovf[0].Crossings != 3 {
		t.Errorf("bulk crossings = %v, want 3", ovf)
	}
	// Take clears.
	if got := p.TakeOverflows(); got != nil {
		t.Errorf("second take must be empty, got %v", got)
	}
}

// TestOverflowCrossingsProperty: total crossings equal
// floor(total/period) regardless of how increments are sliced.
func TestOverflowCrossingsProperty(t *testing.T) {
	f := func(chunks []uint8) bool {
		const period = 57
		p := NewPMU(Athlon64X2)
		if err := p.Configure(0, CounterConfig{Event: EventInstrRetired, User: true, OverflowPeriod: period}); err != nil {
			return false
		}
		p.Enable(1)
		var total, crossings int64
		for _, ch := range chunks {
			p.AddInstr(User, int64(ch))
			total += int64(ch)
			for _, o := range p.TakeOverflows() {
				crossings += o.Crossings
			}
		}
		return crossings == total/period
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestArmedHeadrooms(t *testing.T) {
	p := NewPMU(Athlon64X2)
	if err := p.Configure(0, CounterConfig{Event: EventInstrRetired, User: true, OverflowPeriod: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := p.Configure(1, CounterConfig{Event: EventInstrRetired, User: true}); err != nil {
		t.Fatal(err)
	}
	p.Enable(0b11)
	p.AddInstr(User, 300)
	armed := p.ArmedHeadrooms(User)
	if len(armed) != 1 {
		t.Fatalf("armed = %v", armed)
	}
	if armed[0].Headroom != 700 {
		t.Errorf("headroom = %d, want 700", armed[0].Headroom)
	}
	// Kernel-gated query: counter 0 is user-only, so nothing is armed.
	if got := p.ArmedHeadrooms(Kernel); got != nil {
		t.Errorf("kernel-mode armed = %v", got)
	}
}

// TestZeroIterationLoopWithSampling: edge interaction of the bulk
// bounding logic with an empty loop.
func TestZeroIterationLoopWithSampling(t *testing.T) {
	c := NewCore(Athlon64X2)
	if err := c.PMU.Configure(0, CounterConfig{Event: EventInstrRetired, User: true, OS: true, OverflowPeriod: 10}); err != nil {
		t.Fatal(err)
	}
	c.PMU.Enable(1)
	fired := 0
	c.OnOverflow = func(int, uint64, Mode) { fired++ }
	b := isa.NewBuilder("empty", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(0, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.ALUBlock(25)
	b.Emit(isa.Halt())
	if err := c.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	if fired < 2 {
		t.Errorf("expected overflow deliveries from the straight-line code, got %d", fired)
	}
}

// TestFreqScaleAffectsMemOnly: dropping the clock halves memory cycle
// costs but leaves ALU costs unchanged.
func TestFreqScaleAffectsMemOnly(t *testing.T) {
	run := func(scale float64, op isa.Instr) float64 {
		c := NewCore(Core2Duo)
		c.FreqScale = scale
		b := isa.NewBuilder("w", 0x4000)
		for i := 0; i < 1000; i++ {
			b.Emit(op)
		}
		b.Emit(isa.Halt())
		if err := c.Run(b.Build()); err != nil {
			t.Fatal(err)
		}
		return c.Cycles
	}
	aluFull, aluHalf := run(1.0, isa.ALU()), run(0.5, isa.ALU())
	if aluFull != aluHalf {
		t.Errorf("ALU cycles changed with frequency: %v vs %v", aluFull, aluHalf)
	}
	memFull, memHalf := run(1.0, isa.Load()), run(0.5, isa.Load())
	if memHalf >= memFull {
		t.Errorf("memory cycles did not shrink with the clock: %v vs %v", memFull, memHalf)
	}
}

// TestHaltedFlagAndReuse: a core can run many programs back to back.
func TestHaltedFlagAndReuse(t *testing.T) {
	c := newTestCore(t)
	p := isa.NewBuilder("p", 0x1000).ALUBlock(3).Emit(isa.Halt()).Build()
	for i := 0; i < 10; i++ {
		if err := c.Run(p); err != nil {
			t.Fatal(err)
		}
		if c.RetiredUser != 4 {
			t.Fatalf("run %d: retired %d", i, c.RetiredUser)
		}
	}
	v, _ := c.PMU.Value(0)
	if v != 40 {
		t.Errorf("counter accumulates across runs: %d, want 40", v)
	}
}
