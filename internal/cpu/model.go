package cpu

import (
	"fmt"
	"math"
)

// Arch identifies a micro-architecture family.
type Arch uint8

const (
	// NetBurst is the Pentium D / Pentium 4 micro-architecture: a very
	// deep pipeline with a trace cache and expensive privilege
	// transitions.
	NetBurst Arch = iota
	// Core2 is the Intel Core micro-architecture: 4-wide with macro-op
	// fusion and three fixed-function counters.
	Core2
	// K8 is the AMD Athlon 64 micro-architecture: 3-wide with four
	// programmable counters.
	K8
)

// String returns the architecture name.
func (a Arch) String() string {
	switch a {
	case NetBurst:
		return "NetBurst"
	case Core2:
		return "Core2"
	case K8:
		return "K8"
	}
	return fmt.Sprintf("arch(%d)", uint8(a))
}

// Model describes one of the three processors in the study (Table 1 of
// the paper) plus the micro-architectural parameters the simulator needs.
// Cycle-model constants are calibrated so that loop-iteration costs and
// privilege-transition costs land in the ranges the paper reports
// (Figures 10-12 and the related-work cycle numbers in Section 9).
type Model struct {
	// Name is the marketing name from Table 1, e.g. "Pentium D 925".
	Name string
	// Tag is the short identifier used throughout the paper: PD, CD, K8.
	Tag string
	// Arch is the micro-architecture family.
	Arch Arch
	// GHz is the fixed clock frequency with the performance governor.
	GHz float64
	// NumProgrammable is the number of programmable counters (Table 1).
	NumProgrammable int
	// NumFixed is the number of fixed-function counters excluding the TSC.
	NumFixed int
	// FixedEvents gives the hardwired event of each fixed counter.
	FixedEvents []Event

	// KernelCost scales kernel code path lengths (instructions). The
	// infrastructures execute the same kernel sources on each machine,
	// but dynamic instruction counts differ per micro-architecture
	// (different lock primitives, different entry stubs); the paper's
	// Table 3 median-vs-min spread reflects exactly this.
	KernelCost float64
	// TransitionCycles scales privilege-transition cycle costs
	// (NetBurst's SYSENTER/IRET are notoriously slow).
	TransitionCycles float64

	// BaseIPC is the sustained instructions-per-cycle for plain
	// integer code outside the benchmark loop.
	BaseIPC float64
	// RetireWidth is the micro-architecture's peak retirement rate in
	// instructions per cycle — the hard ceiling no window can beat, as
	// opposed to the *sustained* BaseIPC (tight inner loops beat
	// BaseIPC: the loop fast-forward retires a 3-4 instruction body in
	// LoopBaseCycles). This is the `width` of the cross-event invariant
	// CYCLES >= INSTR/width that internal/bayes encodes (NetBurst
	// retires 3 uops/cycle, Core is 4-wide, K8 3-wide).
	RetireWidth int
	// LoopBaseCycles is the steady-state cycles per iteration of the
	// paper's 3-instruction loop when placement is favourable.
	LoopBaseCycles float64
	// StraddleCycles is the added cycles per iteration when the loop
	// body straddles a fetch-window boundary.
	StraddleCycles float64
	// PlacementQuirkMax is the largest extra per-iteration cost the
	// placement hash can add (NetBurst trace-cache rebuild effects).
	PlacementQuirkMax float64
	// FetchWindow is the instruction-fetch window size in bytes.
	FetchWindow uint64

	// MispredictPenalty is the branch misprediction penalty in cycles.
	MispredictPenalty float64
	// ICacheMissPenalty and ITLBMissPenalty are cold-front-end
	// penalties in cycles.
	ICacheMissPenalty float64
	ITLBMissPenalty   float64

	// TickSkewMax and TickSkewBias parameterize the per-interrupt
	// attribution rounding of user-mode counts (Section 5, Figure 8):
	// at each timer interrupt the counter save/restore can misattribute
	// a few instructions. Skew is drawn from
	// [-TickSkewMax, TickSkewMax] + bias.
	TickSkewMax  int
	TickSkewBias float64
}

// Counters returns the "fixed+prg" cell of Table 1, counting the TSC as
// one fixed counter as the paper does.
func (m *Model) Counters() (fixed, programmable int) {
	return m.NumFixed + 1, m.NumProgrammable
}

// Models for the three processors of the study. The counter inventory
// follows Table 1: PD 0+1 fixed / 18 programmable, CD 3+1 / 2, K8 0+1 / 4.
var (
	// PentiumD is the Pentium D 925, 3.0 GHz, NetBurst.
	PentiumD = &Model{
		Name:              "Pentium D 925",
		Tag:               "PD",
		Arch:              NetBurst,
		GHz:               3.0,
		NumProgrammable:   18,
		NumFixed:          0,
		KernelCost:        1.55,
		TransitionCycles:  2.2,
		BaseIPC:           1.6,
		RetireWidth:       3,
		LoopBaseCycles:    1.5,
		StraddleCycles:    1.0,
		PlacementQuirkMax: 1.5,
		FetchWindow:       16,
		MispredictPenalty: 30,
		ICacheMissPenalty: 40,
		ITLBMissPenalty:   60,
		TickSkewMax:       4,
		TickSkewBias:      1.1,
	}

	// Core2Duo is the Core 2 Duo E6600, 2.4 GHz, Core micro-architecture.
	Core2Duo = &Model{
		Name:            "Core2 Duo E6600",
		Tag:             "CD",
		Arch:            Core2,
		GHz:             2.4,
		NumProgrammable: 2,
		NumFixed:        3,
		FixedEvents: []Event{
			EventInstrRetired, // INST_RETIRED.ANY
			EventCoreCycles,   // CPU_CLK_UNHALTED.CORE
			EventCoreCycles,   // CPU_CLK_UNHALTED.REF
		},
		KernelCost:        1.0,
		TransitionCycles:  1.0,
		BaseIPC:           2.5,
		RetireWidth:       4,
		LoopBaseCycles:    1.0,
		StraddleCycles:    1.0,
		PlacementQuirkMax: 0,
		FetchWindow:       16,
		MispredictPenalty: 15,
		ICacheMissPenalty: 25,
		ITLBMissPenalty:   40,
		TickSkewMax:       3,
		TickSkewBias:      -0.6,
	}

	// Athlon64X2 is the Athlon 64 X2 4200+, 2.2 GHz, K8.
	Athlon64X2 = &Model{
		Name:              "Athlon 64 X2 4200+",
		Tag:               "K8",
		Arch:              K8,
		GHz:               2.2,
		NumProgrammable:   4,
		NumFixed:          0,
		KernelCost:        0.8,
		TransitionCycles:  0.85,
		BaseIPC:           2.2,
		RetireWidth:       3,
		LoopBaseCycles:    2.0,
		StraddleCycles:    1.0,
		PlacementQuirkMax: 0,
		FetchWindow:       16,
		MispredictPenalty: 12,
		ICacheMissPenalty: 20,
		ITLBMissPenalty:   35,
		TickSkewMax:       3,
		TickSkewBias:      0.4,
	}
)

// AllModels lists the study's processors in the paper's order.
var AllModels = []*Model{PentiumD, Core2Duo, Athlon64X2}

// ModelByTag returns the model with the given paper tag (PD, CD, K8).
func ModelByTag(tag string) (*Model, error) {
	for _, m := range AllModels {
		if m.Tag == tag {
			return m, nil
		}
	}
	return nil, fmt.Errorf("cpu: unknown processor tag %q", tag)
}

// CycleGrain is the resolution of every per-instruction cycle cost:
// costs are quantized to multiples of 1/256 cycle. On this grid (and
// its refinements by the dyadic factors 1.5 and FreqScale=0.5, giving a
// finest grain of 2^-10) float64 addition is exact up to 2^43 cycles —
// far beyond any simulated run — so a sum of costs is bit-identical no
// matter how the additions are grouped. That is what lets the compiled
// engine bulk-add whole basic blocks and still reproduce the
// interpreter's clock and counter state byte for byte.
const CycleGrain = 1.0 / 256

// GridCycles quantizes a cycle quantity to the CycleGrain grid.
func GridCycles(x float64) float64 {
	return math.Round(x*256) / 256
}

// Class is an instruction cost class: every executed instruction is
// costed and retired as exactly one class, so per-instruction costs have
// a single definition shared by the interpreter (exec1), the loop
// fast-forward, and the compiled engine's block summaries.
type Class uint8

// The instruction cost classes.
const (
	// ClassALU is plain integer work (ALU, NOP, and VarWork base).
	ClassALU Class = iota
	// ClassMem is a load or store (cost scales with FreqScale).
	ClassMem
	// ClassBranch is a conditional branch (mispredict penalty extra).
	ClassBranch
	// ClassRDPMC is a user-space counter read.
	ClassRDPMC
	// ClassRDTSC is a time-stamp-counter read.
	ClassRDTSC
	// ClassMSR is a privileged counter-control access.
	ClassMSR
	// ClassSyscall is a privilege transition (SYSENTER/SYSRET).
	ClassSyscall
	// ClassIRQ is an interrupt entry/exit.
	ClassIRQ
)

// opCycleCost returns the baseline cycle cost of one instruction of the
// given class on this model, excluding front-end penalties, quantized to
// the CycleGrain grid. Special instructions (counter and privilege
// operations) carry realistic costs so that call-path cycle totals land
// near the numbers reported by Moore (Section 9: ~3524 cycles
// start/stop, ~1299 cycles read on Linux/x86).
func (m *Model) opCycleCost(cl Class) float64 {
	base := 1.0 / m.BaseIPC
	switch cl {
	case ClassALU:
		return GridCycles(base)
	case ClassMem:
		return GridCycles(base * 1.5)
	case ClassBranch:
		return GridCycles(base)
	case ClassRDPMC:
		return GridCycles(32 * m.TransitionCycles)
	case ClassRDTSC:
		return GridCycles(24 * m.TransitionCycles)
	case ClassMSR:
		return GridCycles(90 * m.TransitionCycles)
	case ClassSyscall:
		return GridCycles(160 * m.TransitionCycles)
	case ClassIRQ:
		return GridCycles(220 * m.TransitionCycles)
	default:
		return GridCycles(base)
	}
}
