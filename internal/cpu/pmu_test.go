package cpu

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewPMUInventory(t *testing.T) {
	for _, m := range AllModels {
		p := NewPMU(m)
		if len(p.Prog) != m.NumProgrammable {
			t.Errorf("%s: %d programmable counters, want %d", m.Tag, len(p.Prog), m.NumProgrammable)
		}
		if len(p.Fixed) != m.NumFixed {
			t.Errorf("%s: %d fixed counters, want %d", m.Tag, len(p.Fixed), m.NumFixed)
		}
	}
}

// TestTable1Inventory pins the paper's Table 1: counters per processor.
func TestTable1Inventory(t *testing.T) {
	want := map[string][2]int{
		"PD": {1, 18}, // 0+1 fixed (TSC), 18 programmable
		"CD": {4, 2},  // 3+1 fixed, 2 programmable
		"K8": {1, 4},  // 0+1 fixed, 4 programmable
	}
	for _, m := range AllModels {
		fixed, prg := m.Counters()
		w := want[m.Tag]
		if fixed != w[0] || prg != w[1] {
			t.Errorf("%s: counters = (%d fixed, %d prg), want (%d, %d)", m.Tag, fixed, prg, w[0], w[1])
		}
	}
}

func TestConfigureValidation(t *testing.T) {
	p := NewPMU(Athlon64X2)
	if err := p.Configure(0, CounterConfig{Event: EventInstrRetired, User: true}); err != nil {
		t.Errorf("valid configure failed: %v", err)
	}
	if err := p.Configure(99, CounterConfig{Event: EventInstrRetired}); !errors.Is(err, ErrBadCounter) {
		t.Errorf("out-of-range configure: err = %v, want ErrBadCounter", err)
	}
	if err := p.Configure(-1, CounterConfig{}); !errors.Is(err, ErrBadCounter) {
		t.Errorf("negative index: err = %v, want ErrBadCounter", err)
	}
}

func TestGating(t *testing.T) {
	p := NewPMU(Athlon64X2)
	mustCfg := func(i int, user, os bool) {
		t.Helper()
		if err := p.Configure(i, CounterConfig{Event: EventInstrRetired, User: user, OS: os}); err != nil {
			t.Fatal(err)
		}
	}
	mustCfg(0, true, false) // user only
	mustCfg(1, false, true) // kernel only
	mustCfg(2, true, true)  // both
	p.Enable(0b111)

	p.AddInstr(User, 10)
	p.AddInstr(Kernel, 4)

	wants := []int64{10, 4, 14}
	for i, want := range wants {
		if got, _ := p.Value(i); got != want {
			t.Errorf("counter %d = %d, want %d", i, got, want)
		}
	}
}

func TestEnableDisableReset(t *testing.T) {
	p := NewPMU(Athlon64X2)
	if err := p.Configure(0, CounterConfig{Event: EventInstrRetired, User: true, OS: true}); err != nil {
		t.Fatal(err)
	}
	p.AddInstr(User, 5) // disabled: must not count
	if v, _ := p.Value(0); v != 0 {
		t.Errorf("disabled counter counted: %d", v)
	}
	p.Enable(1)
	p.AddInstr(User, 5)
	if v, _ := p.Value(0); v != 5 {
		t.Errorf("enabled counter = %d, want 5", v)
	}
	p.Disable(1)
	p.AddInstr(User, 5)
	if v, _ := p.Value(0); v != 5 {
		t.Errorf("after disable = %d, want 5", v)
	}
	p.Enable(1)
	p.Reset(1)
	if v, _ := p.Value(0); v != 0 {
		t.Errorf("after reset = %d, want 0", v)
	}
}

func TestTSCAlwaysCounts(t *testing.T) {
	p := NewPMU(Core2Duo)
	p.AddCycles(User, 100)
	p.AddCycles(Kernel, 50)
	if got := p.TSC(); got != 150 {
		t.Errorf("TSC = %d, want 150", got)
	}
}

func TestFixedCounters(t *testing.T) {
	p := NewPMU(Core2Duo)
	p.EnableFixed()
	p.AddInstr(User, 7)
	p.AddCycles(User, 20)
	if got := p.Fixed[0].Value(); got != 7 {
		t.Errorf("fixed INSTR_RETIRED = %d, want 7", got)
	}
	if got := p.Fixed[1].Value(); got != 20 {
		t.Errorf("fixed CPU_CLK_UNHALTED = %d, want 20", got)
	}
	// Gating of fixed counters is configurable; the event is not.
	if err := p.ConfigureFixed(0, false, true); err != nil {
		t.Fatal(err)
	}
	p.AddInstr(User, 5)
	if got := p.Fixed[0].Value(); got != 7 {
		t.Errorf("kernel-gated fixed counter counted user instr: %d", got)
	}
	if err := p.ConfigureFixed(9, true, true); !errors.Is(err, ErrBadCounter) {
		t.Errorf("ConfigureFixed out of range: %v", err)
	}
}

func TestSkewExclusive(t *testing.T) {
	p := NewPMU(Athlon64X2)
	cfg := func(i int, user, os bool) {
		if err := p.Configure(i, CounterConfig{Event: EventInstrRetired, User: user, OS: os}); err != nil {
			t.Fatal(err)
		}
	}
	cfg(0, true, false)
	cfg(1, false, true)
	cfg(2, true, true)
	p.Enable(0b111)
	p.AddInstr(User, 100)
	p.AddInstr(Kernel, 100)

	p.SkewExclusive(3)
	if v, _ := p.Value(0); v != 103 {
		t.Errorf("user-only after +3 skew = %d, want 103", v)
	}
	if v, _ := p.Value(1); v != 97 {
		t.Errorf("kernel-only after +3 skew = %d, want 97", v)
	}
	if v, _ := p.Value(2); v != 200 {
		t.Errorf("both-modes counter must be invariant to skew, got %d", v)
	}
}

func TestSkewNeverNegative(t *testing.T) {
	p := NewPMU(Athlon64X2)
	if err := p.Configure(0, CounterConfig{Event: EventInstrRetired, User: true}); err != nil {
		t.Fatal(err)
	}
	p.Enable(1)
	p.SkewExclusive(-10)
	if v, _ := p.Value(0); v != 0 {
		t.Errorf("counter went negative: %d", v)
	}
}

// TestAdditivity: counting n then m instructions equals counting n+m
// (the PMU is a pure accumulator).
func TestAdditivity(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := NewPMU(Athlon64X2)
		p2 := NewPMU(Athlon64X2)
		for _, p := range []*PMU{p1, p2} {
			if err := p.Configure(0, CounterConfig{Event: EventInstrRetired, User: true, OS: true}); err != nil {
				return false
			}
			p.Enable(1)
		}
		p1.AddInstr(User, int64(a))
		p1.AddInstr(User, int64(b))
		p2.AddInstr(User, int64(a)+int64(b))
		v1, _ := p1.Value(0)
		v2, _ := p2.Value(0)
		return v1 == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetValue(t *testing.T) {
	p := NewPMU(Athlon64X2)
	if err := p.SetValue(2, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Value(2); v != 42 {
		t.Errorf("SetValue round-trip = %d", v)
	}
	if err := p.SetValue(17, 1); !errors.Is(err, ErrBadCounter) {
		t.Errorf("SetValue out of range: %v", err)
	}
	if _, err := p.Value(-3); !errors.Is(err, ErrBadCounter) {
		t.Errorf("Value out of range: %v", err)
	}
}

func TestUnsupportedEventRejected(t *testing.T) {
	// All three models support the full event list in this study, so
	// forge a restricted support check via an invalid event value.
	p := NewPMU(Core2Duo)
	if err := p.Configure(0, CounterConfig{Event: Event(99), User: true}); err == nil {
		t.Error("unsupported event accepted")
	}
}

func TestEventStrings(t *testing.T) {
	if EventInstrRetired.String() != "INSTR_RETIRED" {
		t.Error("event name mismatch")
	}
	if Event(200).String() == "" {
		t.Error("unknown event must render")
	}
}

func TestNativeEvents(t *testing.T) {
	for _, m := range AllModels {
		for _, ev := range Events(m.Arch) {
			code, ok := NativeEventCode(m.Arch, ev)
			if !ok {
				t.Errorf("%s: event %s listed but no code", m.Arch, ev)
			}
			if NativeEventName(m.Arch, ev) == "" {
				t.Errorf("%s: event %s has no native name", m.Arch, ev)
			}
			_ = code
		}
	}
	if _, ok := NativeEventCode(K8, EventNone); ok {
		t.Error("EventNone should have no native code")
	}
	// Same generic event must map to different native mnemonics on
	// different vendors (the reason PAPI presets exist).
	if NativeEventName(K8, EventInstrRetired) == NativeEventName(Core2, EventInstrRetired) {
		t.Error("K8 and Core2 should differ in native event names")
	}
}

func TestCountsIn(t *testing.T) {
	c := CounterConfig{User: true, OS: false}
	if !c.CountsIn(User) || c.CountsIn(Kernel) {
		t.Error("user-only gating wrong")
	}
	c = CounterConfig{User: false, OS: true}
	if c.CountsIn(User) || !c.CountsIn(Kernel) {
		t.Error("kernel-only gating wrong")
	}
}
