package cpu

import "repro/internal/isa"

// Runner is an execution engine: a strategy for driving a Core through
// a program. The interpreter engine steps every instruction; the
// compiled engine bulk-applies precomputed basic-block summaries (see
// internal/engine). Defined here, beneath the engines, so that the
// measurement layers can accept an engine without importing one.
//
// RunProgram must be a drop-in replacement for Core.Run: it resets
// per-run state and executes p to completion with byte-identical
// effects on the PMU, clock, captures, and tallies.
type Runner interface {
	// Name identifies the engine ("interpreter", "compiled") for
	// request routing and health reporting.
	Name() string
	// RunProgram executes p on c to completion.
	RunProgram(c *Core, p *isa.Program) error
}
