// Package cpu simulates the study's three IA32 processors (Table 1) at
// the level the paper's error analysis needs: an executing core with a
// cycle clock and TSC, a per-model PMU with programmable (and, on Core,
// fixed) counters that gate on privilege mode, counter overflow
// interrupts, a periodic timer interrupt, and the per-event encodings
// (the vendor mnemonics libpfm and libperfctr program).
//
// Everything above — the kernel, the counter-access infrastructures,
// the measurement engine — observes hardware state only through this
// package, and every simulated instruction that touches the clock or a
// counter is deterministic in the core's seed, which is what makes
// whole-service responses reproducible byte for byte.
package cpu

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/xrand"
)

// Mode is the processor privilege level. The study distinguishes only
// user and kernel mode (Section 2.5).
type Mode uint8

const (
	// User is unprivileged execution.
	User Mode = iota
	// Kernel is privileged execution (syscall and interrupt handlers).
	Kernel
)

// String returns "user" or "kernel".
func (m Mode) String() string {
	if m == User {
		return "user"
	}
	return "kernel"
}

// Capture records the value observed by one RDPMC/RDTSC instruction that
// carries a capture slot. The measurement patterns compute c0/c1 (and
// hence c-delta) from these.
type Capture struct {
	// Slot is the capture slot from the instruction.
	Slot int
	// Counter is the programmable counter index, or TSCCounter.
	Counter int
	// Value is the observed (virtualized, if an extension is installed)
	// counter value.
	Value int64
	// Cycle is the global cycle time of the capture.
	Cycle float64
	// Mode is the privilege mode the capture executed in.
	Mode Mode
}

// TSCCounter is the Counter value of a time-stamp-counter capture.
const TSCCounter = -1

// Timer models the periodic timer interrupt (the Linux tick). Its
// handler executes in kernel mode and is the mechanism behind the
// duration-dependent measurement error of Section 5.
type Timer struct {
	// Period is the cycle distance between ticks (GHz*1e9/HZ).
	Period float64
	// Next is the cycle time of the next tick.
	Next float64
	// Handler is the kernel tick handler; nil disables delivery.
	Handler *isa.Program
	// Enabled gates delivery.
	Enabled bool
	// SkewBias shifts the per-tick user-count attribution rounding;
	// kernel extensions differ in how precisely they save and restore
	// counts around an interrupt, so the installed extension sets this.
	SkewBias float64
}

// Core is one simulated processor core: the execution engine, PMU, and
// interrupt machinery. A Core is not safe for concurrent use.
type Core struct {
	// Model is the processor being simulated.
	Model *Model
	// PMU is the core's performance monitoring unit.
	PMU *PMU
	// Mode is the current privilege level.
	Mode Mode
	// Cycles is the global cycle clock (mirrors the TSC).
	Cycles float64

	// Timer is the periodic tick source.
	Timer Timer

	// FreqScale is the current clock frequency relative to nominal
	// (1.0 = the model's rated GHz). Frequency scaling does not change
	// how many cycles computation takes, but memory latency — fixed in
	// wall time by the bus clock — shrinks in cycles when the core
	// clock drops (the Section 8 frequency-scaling effect).
	FreqScale float64

	// Syscalls maps syscall numbers to kernel handler programs. The
	// kernel package populates it; extensions register their handlers
	// through the kernel.
	Syscalls map[int]*isa.Program

	// OverflowHandler is the kernel's PMU-interrupt handler, run once
	// per counter period crossing when sampling is configured.
	OverflowHandler *isa.Program
	// OnOverflow is a host callback fired per crossing with the address
	// of the code executing when the counter overflowed — the signal a
	// sampling profiler builds its histogram from.
	OnOverflow func(counter int, addr uint64, mode Mode)

	// VirtualRead, when set by a kernel extension, supplies the value an
	// RDPMC capture observes for a counter (the per-thread virtualized
	// count). When nil, captures read the raw hardware counter.
	VirtualRead func(counter int) int64
	// OnMSR is invoked after a WRMSR counter-control write so extensions
	// can mirror resets into their per-thread state.
	OnMSR func(action isa.MSRAction, mask uint64)
	// OnTick is invoked after each timer-interrupt handler completes
	// (scheduler hook).
	OnTick func()

	// NestedRun, when set by an execution engine, runs nested handler
	// programs (syscall, timer, and PMU-overflow handlers) in place of
	// the built-in interpreter loop, so an engine's acceleration applies
	// to kernel code too. When nil, handlers interpret per instruction.
	NestedRun func(p *isa.Program) error

	// Captures collects counter reads of the current Run.
	Captures []Capture
	// RetiredUser and RetiredKernel tally retired instructions per mode
	// for diagnostics and tests; they are independent of PMU gating.
	RetiredUser   int64
	RetiredKernel int64
	// TimerDeliveries counts delivered ticks in the current Run.
	TimerDeliveries int
	// OverflowDeliveries counts delivered PMU interrupts; OverflowsLost
	// counts crossings dropped while interrupts were masked (crossings
	// caused by the overflow handlers themselves).
	OverflowDeliveries int
	OverflowsLost      int64

	rng     *xrand.Rand
	inIRQ   bool
	inPMI   bool
	depth   int
	curAddr uint64              // address of the executing code region
	lines   map[uint64]struct{} // touched icache lines (cold-miss model)
	pages   map[uint64]struct{} // touched iTLB pages
	halted  bool
}

// maxNesting bounds handler recursion (user -> syscall -> interrupt).
const maxNesting = 8

// NewCore returns a core for the given model with a zero seed.
func NewCore(m *Model) *Core {
	return &Core{
		Model:     m,
		PMU:       NewPMU(m),
		FreqScale: 1.0,
		Syscalls:  make(map[int]*isa.Program),
		rng:       xrand.New(0),
		lines:     make(map[uint64]struct{}),
		pages:     make(map[uint64]struct{}),
	}
}

// ClassCost returns the cycle cost of one instruction of the given
// class at the current clock frequency: memory costs scale with the
// clock, core costs do not. FreqScale is always a dyadic rational (1.0
// or 0.5), so scaled costs stay on the exact-addition grid (see
// CycleGrain).
func (c *Core) ClassCost(cl Class) float64 {
	cost := c.Model.opCycleCost(cl)
	if cl == ClassMem {
		cost *= c.FreqScale
	}
	return cost
}

// ClassOf returns the cost class of an op whose accounting is a plain
// retire — the mapping exec1 costs by and block summaries count by. The
// second result is false for ops with structured execution (OpLoop).
func ClassOf(op isa.Op) (Class, bool) {
	switch op {
	case isa.OpALU, isa.OpNop, isa.OpVarWork, isa.OpHalt:
		return ClassALU, true
	case isa.OpLoad, isa.OpStore:
		return ClassMem, true
	case isa.OpBranch:
		return ClassBranch, true
	case isa.OpRDPMC:
		return ClassRDPMC, true
	case isa.OpRDTSC:
		return ClassRDTSC, true
	case isa.OpRDMSR, isa.OpWRMSR:
		return ClassMSR, true
	case isa.OpSyscall, isa.OpSysRet:
		return ClassSyscall, true
	case isa.OpIRet:
		return ClassIRQ, true
	default:
		return 0, false
	}
}

// SeedRun reseeds the per-run random stream and randomizes the timer
// phase. Call it before each Run to model a measurement taken at an
// arbitrary point relative to the tick.
func (c *Core) SeedRun(seed uint64) {
	c.rng = xrand.New(seed)
	if c.Timer.Period > 0 {
		c.Timer.Next = c.Cycles + c.rng.Float64()*c.Timer.Period
	}
}

// ResetClock rewinds the global cycle clock (and with it the TSC) to
// the boot instant and re-phases the timer accordingly. Together with
// PMU.ZeroState it erases the only execution state that survives Run:
// absolute time. Without it, the fractional cycles accumulated by
// earlier measurements shift the int64 truncation of later cycle
// captures, making a system's results depend on its history.
func (c *Core) ResetClock() {
	c.Cycles = 0
	c.PMU.ZeroState()
	if c.Timer.Period > 0 {
		c.Timer.Next = c.Timer.Period
	}
}

// InstallTimer configures the periodic tick. hz is the tick frequency.
func (c *Core) InstallTimer(hz float64, handler *isa.Program) {
	c.Timer.Period = c.Model.GHz * 1e9 / hz
	c.Timer.Next = c.Cycles + c.Timer.Period
	c.Timer.Handler = handler
	c.Timer.Enabled = true
}

// Errors returned by the execution engine.
var (
	ErrPrivilege   = errors.New("cpu: privileged instruction in user mode")
	ErrBadSyscall  = errors.New("cpu: syscall number not registered")
	ErrNesting     = errors.New("cpu: handler nesting too deep")
	ErrStrayReturn = errors.New("cpu: sysret/iret outside handler")
)

// Run executes a user program to completion (OpHalt). Captures and
// per-run tallies are reset. The caller is responsible for PMU
// configuration; counters keep their values across runs unless reset.
func (c *Core) Run(p *isa.Program) error {
	c.BeginRun()
	return c.runProg(p)
}

// BeginRun resets per-run state: captures, tallies, handler depth,
// fetch warmth, and privilege mode. Execution engines that drive the
// core through Step call it in place of Run.
func (c *Core) BeginRun() {
	c.Captures = c.Captures[:0]
	c.RetiredUser, c.RetiredKernel = 0, 0
	c.TimerDeliveries = 0
	c.OverflowDeliveries = 0
	c.OverflowsLost = 0
	c.halted = false
	c.inIRQ = false
	c.inPMI = false
	c.depth = 0
	clear(c.lines)
	clear(c.pages)
	c.Mode = User
}

// PushFrame enters a program frame (the top-level program or a nested
// handler), enforcing the nesting bound. Callers must arrange for
// PopFrame to run exactly once per PushFrame call — even when PushFrame
// returns an error — which keeps the depth accounting of the original
// recursive interpreter.
func (c *Core) PushFrame(p *isa.Program) error {
	c.depth++
	if c.depth > maxNesting {
		return fmt.Errorf("%w (program %q)", ErrNesting, p.Name)
	}
	return nil
}

// PopFrame leaves the current program frame.
func (c *Core) PopFrame() { c.depth-- }

// runProg interprets a program until OpHalt (top level) or
// OpSysRet/OpIRet (handlers). Handlers execute via nested calls, so a
// syscall's instructions retire synchronously inside the OpSyscall
// instruction of the caller.
func (c *Core) runProg(p *isa.Program) error {
	err := c.PushFrame(p)
	defer c.PopFrame()
	if err != nil {
		return err
	}

	pc := 0
	for {
		next, done, err := c.Step(p, pc)
		if done || err != nil {
			return err
		}
		pc = next
	}
}

// runNested executes a nested handler program through the installed
// execution engine, or the interpreter when none is installed.
func (c *Core) runNested(p *isa.Program) error {
	if c.NestedRun != nil {
		return c.NestedRun(p)
	}
	return c.runProg(p)
}

// Step executes exactly one instruction of p at pc inside the current
// frame and returns the next pc. done reports frame completion (OpHalt,
// OpSysRet, OpIRet); terminators return without the post-instruction
// interrupt checks, exactly as the interpreter loop always has. All
// other instructions end with pending timer ticks and counter overflows
// delivered. Step is the single definition of instruction semantics:
// the interpreter loop and the compiled engine's stepwise fallback both
// run through it.
func (c *Core) Step(p *isa.Program, pc int) (next int, done bool, err error) {
	if pc < 0 || pc >= len(p.Code) {
		return 0, false, fmt.Errorf("cpu: pc %d out of range in %q", pc, p.Name)
	}
	in := p.Code[pc]
	switch in.Op {
	case isa.OpHalt:
		c.retire(1, ClassALU)
		c.halted = true
		return pc, true, nil

	case isa.OpSysRet:
		if c.depth < 2 {
			return 0, false, fmt.Errorf("%w (sysret in %q)", ErrStrayReturn, p.Name)
		}
		c.retire(1, ClassSyscall)
		return pc, true, nil

	case isa.OpIRet:
		if c.depth < 2 {
			return 0, false, fmt.Errorf("%w (iret in %q)", ErrStrayReturn, p.Name)
		}
		c.retire(1, ClassIRQ)
		return pc, true, nil

	case isa.OpBranch:
		c.execBranch(p, pc, in)
		if in.B != 0 {
			next = int(in.A)
		} else {
			next = pc + 1
		}

	case isa.OpLoop:
		if err := c.execLoop(p, pc, in); err != nil {
			return 0, false, err
		}
		next = pc + 1 + int(in.B)

	case isa.OpSyscall:
		if err := c.execSyscall(in); err != nil {
			return 0, false, err
		}
		next = pc + 1

	default:
		if err := c.exec1(p, pc, in); err != nil {
			return 0, false, err
		}
		next = pc + 1
	}
	if err := c.CheckInterrupts(); err != nil {
		return 0, false, err
	}
	return next, false, nil
}

// CheckInterrupts delivers pending timer ticks and counter overflows —
// the post-instruction check the interpreter runs after every step and
// the compiled engine runs after every bulk block.
func (c *Core) CheckInterrupts() error {
	if err := c.maybeInterrupt(); err != nil {
		return err
	}
	return c.deliverOverflows()
}

// deliverOverflows runs the PMU interrupt for every pending counter
// period crossing. Crossings produced by the handlers themselves are
// dropped — the PMU interrupt is masked during delivery, as on real
// hardware — and tallied in OverflowsLost.
func (c *Core) deliverOverflows() error {
	if c.OnOverflow == nil && c.OverflowHandler == nil {
		// No sampling consumer: discard cheaply so the queue cannot grow.
		if len(c.PMU.pending) > 0 {
			c.PMU.TakeOverflows()
		}
		return nil
	}
	if c.inPMI {
		return nil
	}
	ovfs := c.PMU.TakeOverflows()
	if len(ovfs) == 0 {
		return nil
	}
	c.inPMI = true
	// Samples attribute to the code that was executing at the crossing,
	// not to the handler; the handler's own fetches must not disturb
	// the tracked address.
	addr := c.curAddr
	defer func() {
		c.inPMI = false
		c.curAddr = addr
	}()
	for _, o := range ovfs {
		for k := int64(0); k < o.Crossings; k++ {
			c.OverflowDeliveries++
			if c.OnOverflow != nil {
				c.OnOverflow(o.Counter, addr, c.Mode)
			}
			if c.OverflowHandler != nil {
				prev := c.Mode
				c.Mode = Kernel
				c.addCycles(c.ClassCost(ClassIRQ))
				err := c.runNested(c.OverflowHandler)
				c.Mode = prev
				if err != nil {
					return err
				}
			}
		}
	}
	for _, o := range c.PMU.TakeOverflows() {
		c.OverflowsLost += o.Crossings
	}
	return nil
}

// exec1 executes a non-control-flow instruction.
func (c *Core) exec1(p *isa.Program, pc int, in isa.Instr) error {
	c.fetchPenalty(p.Addr(pc))
	switch in.Op {
	case isa.OpALU, isa.OpNop, isa.OpLoad, isa.OpStore:
		cl, _ := ClassOf(in.Op)
		c.retire(1, cl)

	case isa.OpVarWork:
		extra := c.rng.Geometric(int(in.A), varWorkDecay)
		c.retire(1+int64(extra), ClassALU)

	case isa.OpRDPMC:
		c.retire(1, ClassRDPMC)
		if in.Slot != isa.NoSlot {
			v := c.readCounterValue(int(in.A))
			c.Captures = append(c.Captures, Capture{
				Slot: int(in.Slot), Counter: int(in.A), Value: v,
				Cycle: c.Cycles, Mode: c.Mode,
			})
		}

	case isa.OpRDTSC:
		c.retire(1, ClassRDTSC)
		if in.Slot != isa.NoSlot {
			c.Captures = append(c.Captures, Capture{
				Slot: int(in.Slot), Counter: TSCCounter, Value: c.PMU.TSC(),
				Cycle: c.Cycles, Mode: c.Mode,
			})
		}

	case isa.OpRDMSR:
		if c.Mode != Kernel {
			return fmt.Errorf("%w: rdmsr in %q", ErrPrivilege, p.Name)
		}
		c.retire(1, ClassMSR)

	case isa.OpWRMSR:
		if c.Mode != Kernel {
			return fmt.Errorf("%w: wrmsr in %q", ErrPrivilege, p.Name)
		}
		// The control write takes effect *at this instruction*: everything
		// executed before an enable (or after a disable) is outside the
		// measurement window. Retire first so that an enabling WRMSR does
		// not count itself.
		c.retire(1, ClassMSR)
		action, mask := isa.MSRAction(in.A), uint64(in.B)
		switch action {
		case isa.MSREnable:
			c.PMU.Enable(mask)
		case isa.MSRDisable:
			c.PMU.Disable(mask)
		case isa.MSRReset:
			c.PMU.Reset(mask)
		default:
			return fmt.Errorf("cpu: unknown msr action %d in %q", in.A, p.Name)
		}
		if c.OnMSR != nil {
			c.OnMSR(action, mask)
		}

	default:
		return fmt.Errorf("cpu: unexpected op %s in %q", in.Op, p.Name)
	}
	return nil
}

// readCounterValue returns what an RDPMC-based read observes.
func (c *Core) readCounterValue(ctr int) int64 {
	if c.VirtualRead != nil {
		return c.VirtualRead(ctr)
	}
	v, err := c.PMU.Value(ctr)
	if err != nil {
		return 0
	}
	return v
}

// execBranch costs and predicts a conditional branch.
func (c *Core) execBranch(p *isa.Program, pc int, in isa.Instr) {
	c.fetchPenalty(p.Addr(pc))
	c.retire(1, ClassBranch)
	// Static not-taken prediction for forward, taken for backward: a
	// mispredict costs the model penalty and retires a BrMisp event.
	backward := in.A <= int64(pc)
	taken := in.B != 0
	if taken != backward {
		c.PMU.AddEvent(c.Mode, EventBrMispRetired, 1)
		c.addCycles(c.Model.MispredictPenalty)
	}
}

// execSyscall transitions to kernel mode and synchronously runs the
// registered handler.
func (c *Core) execSyscall(in isa.Instr) error {
	h, ok := c.Syscalls[int(in.A)]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadSyscall, in.A)
	}
	c.retire(1, ClassSyscall) // SYSENTER retires in user mode
	prev := c.Mode
	c.Mode = Kernel
	c.addCycles(c.ClassCost(ClassSyscall)) // pipeline drain on entry
	err := c.runNested(h)
	c.Mode = prev
	return err
}

// varWorkDecay is the per-step continuation probability of OpVarWork's
// geometric extra-work distribution.
const varWorkDecay = 0.35

// execLoop runs a loop block. Plain bodies (no privileged or capturing
// instructions) fast-forward analytically between timer interrupts: the
// per-iteration cycle cost is a deterministic function of the body's
// placement (the Section 6 effect), so bulk advancement is exact.
func (c *Core) execLoop(p *isa.Program, pc int, hdr isa.Instr) error {
	body := p.Code[pc+1 : pc+1+int(hdr.B)]
	iters := hdr.A
	if iters == 0 {
		return nil
	}
	bodyAddr := p.Addr(pc + 1)
	if !plainBody(body) {
		return c.execLoopStepwise(p, pc, body, iters)
	}

	var bodyBytes uint64
	var bodyRetire int64
	memOps := 0
	for _, in := range body {
		bodyBytes += uint64(in.Size)
		bodyRetire += int64(in.Retires())
		if in.Op == isa.OpLoad || in.Op == isa.OpStore {
			memOps++
		}
	}
	iterCycles := c.IterCycles(bodyAddr, bodyBytes, memOps)

	// One-time front-end warmup: first fetch of the body misses the
	// i-cache, and the loop branch mispredicts while the predictor
	// learns and once more at loop exit.
	c.fetchPenalty(bodyAddr)
	c.PMU.AddEvent(c.Mode, EventBrMispRetired, 2)
	c.addCycles(2 * c.Model.MispredictPenalty)

	// Memory-walking bodies (the Korn-style array benchmark) miss the
	// data cache once per line: sequential 8-byte accesses hit 64-byte
	// lines, so one miss per 8 loads per memory operation.
	if memOps > 0 {
		c.PMU.AddEvent(c.Mode, EventDCacheMiss, float64(memOps)*float64(iters)/8)
	}

	c.curAddr = bodyAddr
	sampled := c.OnOverflow != nil || c.OverflowHandler != nil
	remaining := iters
	for remaining > 0 {
		n := remaining
		if c.TimerActive() {
			headroom := c.Timer.Next - c.Cycles
			fit := int64(headroom / iterCycles)
			if fit < n {
				n = fit
			}
		}
		if sampled {
			// Bound the chunk at the next overflow boundary so PMU
			// interrupts fire at the crossing, as on hardware, instead
			// of batching at the chunk end.
			for _, a := range c.PMU.ArmedHeadrooms(c.Mode) {
				var perIter float64
				switch a.Event {
				case EventInstrRetired:
					perIter = float64(bodyRetire)
				case EventCoreCycles:
					perIter = iterCycles
				default:
					continue
				}
				fit := int64(float64(a.Headroom)/perIter) + 1
				if fit < n {
					n = fit
				}
			}
		}
		if n > 0 {
			c.RetireBulk(n*bodyRetire, float64(n)*iterCycles)
			remaining -= n
			if err := c.deliverOverflows(); err != nil {
				return err
			}
		}
		if remaining > 0 {
			// The next iteration crosses the tick boundary: execute it,
			// then deliver.
			c.RetireBulk(bodyRetire, iterCycles)
			remaining--
			if err := c.maybeInterrupt(); err != nil {
				return err
			}
			if err := c.deliverOverflows(); err != nil {
				return err
			}
			c.curAddr = bodyAddr
		}
	}
	return nil
}

// execLoopStepwise interprets every iteration of a non-plain body.
func (c *Core) execLoopStepwise(p *isa.Program, pc int, body []isa.Instr, iters int64) error {
	for k := int64(0); k < iters; k++ {
		for j, in := range body {
			if err := c.execStraight(p, pc+1+j, in); err != nil {
				return err
			}
			if err := c.maybeInterrupt(); err != nil {
				return err
			}
		}
	}
	return nil
}

// execStraight executes one instruction of straight-line code: control
// flow is linear, so a branch is costed and predicted but not followed
// (loop-body branches fall through by construction — Builder emits them
// only as the paper's compare-and-fall-through pattern). This is the
// per-instruction dispatch shared by the stepwise loop fallback; the
// compiled engine's block summaries count by exactly these classes.
func (c *Core) execStraight(p *isa.Program, pc int, in isa.Instr) error {
	switch in.Op {
	case isa.OpBranch:
		c.execBranch(p, pc, in)
		return nil
	case isa.OpSyscall:
		return c.execSyscall(in)
	case isa.OpLoop:
		return fmt.Errorf("cpu: nested loop blocks must be flattened (program %q)", p.Name)
	default:
		return c.exec1(p, pc, in)
	}
}

// plainBody reports whether all instructions may be bulk-advanced.
func plainBody(body []isa.Instr) bool {
	for _, in := range body {
		switch in.Op {
		case isa.OpALU, isa.OpNop, isa.OpLoad, isa.OpStore, isa.OpBranch:
		default:
			return false
		}
	}
	return true
}

// IterCycles returns the steady-state cycles per iteration for a loop
// body located at addr. This is the paper's Section 6 mechanism: the
// body's placement relative to fetch-window boundaries — which depends on
// the compiler, optimization level, and surrounding code — selects one of
// a few per-iteration costs (K8: 2 or 3 cycles; Figure 11).
func (c *Core) IterCycles(addr, bytes uint64, memOps int) float64 {
	m := c.Model
	cyc := m.LoopBaseCycles
	if addr%m.FetchWindow+bytes > m.FetchWindow {
		cyc += m.StraddleCycles
	}
	if m.PlacementQuirkMax > 0 {
		// NetBurst trace-cache rebuild sensitivity: a placement hash
		// selects one of four extra per-iteration costs.
		h := xrand.Mix(addr>>4, uint64(m.Arch))
		cyc += float64(h%4) / 3 * m.PlacementQuirkMax
	}
	// Memory latency is pinned to the bus clock, so its cycle cost
	// scales with the core frequency (Section 8's frequency-scaling
	// caveat). The result is quantized to the CycleGrain grid so that
	// bulk advancement (n iterations in one add) is bit-exact.
	cyc += float64(memOps) * 0.5 / m.BaseIPC * c.FreqScale
	return GridCycles(cyc)
}

// TimerActive reports whether tick delivery can occur now.
func (c *Core) TimerActive() bool {
	return c.Timer.Enabled && c.Timer.Handler != nil && !c.inIRQ
}

// maybeInterrupt delivers pending timer ticks.
func (c *Core) maybeInterrupt() error {
	if !c.TimerActive() {
		return nil
	}
	for c.Cycles >= c.Timer.Next {
		if err := c.deliverTimer(); err != nil {
			return err
		}
	}
	return nil
}

// deliverTimer runs one tick: attribution skew, kernel handler, return.
func (c *Core) deliverTimer() error {
	c.inIRQ = true
	c.TimerDeliveries++

	// Counter save/restore around the interrupt rounds user-attributed
	// counts by a few instructions (the source of Figure 8's tiny
	// nonzero slopes). The bias sum is quantized to the cycle grid so
	// skewed counter values stay exactly addable (see CycleGrain).
	if max := c.Model.TickSkewMax; max > 0 {
		delta := GridCycles(c.Model.TickSkewBias+c.Timer.SkewBias) +
			float64(c.rng.Intn(2*max+1)-max)
		c.PMU.SkewExclusive(delta)
	}

	prev := c.Mode
	c.Mode = Kernel
	c.addCycles(c.ClassCost(ClassIRQ))
	err := c.runNested(c.Timer.Handler)
	if c.OnTick != nil {
		c.OnTick()
	}
	c.Mode = prev
	c.inIRQ = false
	c.Timer.Next += c.Timer.Period
	return err
}

// retire counts n instructions in the current mode and advances time by
// the per-op cycle cost.
func (c *Core) retire(n int64, cl Class) {
	c.PMU.AddInstr(c.Mode, n)
	if c.Mode == User {
		c.RetiredUser += n
	} else {
		c.RetiredKernel += n
	}
	c.addCycles(float64(n) * c.ClassCost(cl))
}

// RetireBulk counts n instructions and cyc cycles in the current mode
// without front-end effects — the accounting primitive behind both the
// loop fast-forward and the compiled engine's block application.
func (c *Core) RetireBulk(n int64, cyc float64) {
	c.PMU.AddInstr(c.Mode, n)
	if c.Mode == User {
		c.RetiredUser += n
	} else {
		c.RetiredKernel += n
	}
	c.addCycles(cyc)
}

// addCycles advances the clock by cyc cycles in the current mode.
func (c *Core) addCycles(cyc float64) {
	c.Cycles += cyc
	c.PMU.AddCycles(c.Mode, cyc)
}

// SetExecAddr sets the executing-address tracker used for overflow
// attribution, without fetch side effects. The compiled engine uses it
// after a bulk block to leave the same attribution address a stepwise
// pass through the block would have left.
func (c *Core) SetExecAddr(addr uint64) { c.curAddr = addr }

// FetchColdCount reports how many of the given i-cache lines and i-TLB
// pages are still untouched this run, without changing tracking state.
// The compiled engine folds the corresponding first-touch penalties into
// a block's bulk cost: penalties are integer cycle constants and miss
// events integer counts, so the aggregate is exactly what stepping
// would have charged.
func (c *Core) FetchColdCount(lines, pages []uint64) (coldLines, coldPages int) {
	for _, l := range lines {
		if _, ok := c.lines[l]; !ok {
			coldLines++
		}
	}
	for _, p := range pages {
		if _, ok := c.pages[p]; !ok {
			coldPages++
		}
	}
	return coldLines, coldPages
}

// FetchMark records the lines and pages as touched, charging the cold
// first-touch miss events and penalty cycles exactly as per-instruction
// fetches would have. Callers bulk-advancing a region use it with the
// region's full footprint.
func (c *Core) FetchMark(lines, pages []uint64) {
	for _, l := range lines {
		if _, ok := c.lines[l]; !ok {
			c.lines[l] = struct{}{}
			c.PMU.AddEvent(c.Mode, EventICacheMiss, 1)
			c.addCycles(c.Model.ICacheMissPenalty)
		}
	}
	for _, p := range pages {
		if _, ok := c.pages[p]; !ok {
			c.pages[p] = struct{}{}
			c.PMU.AddEvent(c.Mode, EventITLBMiss, 1)
			c.addCycles(c.Model.ITLBMissPenalty)
		}
	}
}

// fetchPenalty applies cold i-cache and i-TLB costs on first touch of a
// line or page, and tracks the executing address for overflow
// attribution.
func (c *Core) fetchPenalty(addr uint64) {
	c.curAddr = addr
	line := addr >> 6
	if _, ok := c.lines[line]; !ok {
		c.lines[line] = struct{}{}
		c.PMU.AddEvent(c.Mode, EventICacheMiss, 1)
		c.addCycles(c.Model.ICacheMissPenalty)
	}
	page := addr >> 12
	if _, ok := c.pages[page]; !ok {
		c.pages[page] = struct{}{}
		c.PMU.AddEvent(c.Mode, EventITLBMiss, 1)
		c.addCycles(c.Model.ITLBMissPenalty)
	}
}
