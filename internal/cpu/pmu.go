package cpu

import (
	"errors"
	"fmt"
)

// CounterConfig programs one performance counter: what to count and in
// which privilege modes (Section 2.5 of the paper — user, kernel, or
// both — is a per-counter hardware capability).
type CounterConfig struct {
	// Event is the micro-architectural event to count.
	Event Event
	// User enables counting while the processor runs in user mode.
	User bool
	// OS enables counting while the processor runs in kernel mode.
	OS bool
	// OverflowPeriod, when positive, raises a PMU interrupt every time
	// the counter crosses a multiple of the period — the hardware
	// mechanism behind statistical sampling (Section 2.1: counters "can
	// be configured to cause an interrupt at overflow"). Zero disables
	// overflow interrupts.
	OverflowPeriod int64
}

// CountsIn reports whether the configuration counts events occurring in
// the given mode.
func (c CounterConfig) CountsIn(m Mode) bool {
	if m == User {
		return c.User
	}
	return c.OS
}

// Counter is one hardware counter register. Values are kept as float64:
// instruction counts stay exact (integers below 2^53) while cycle counts
// can accumulate fractional per-instruction costs.
type Counter struct {
	Config  CounterConfig
	Enabled bool
	fixed   bool // fixed-function: Event is hardwired
	value   float64
}

// Value returns the current count, truncated to an integer as a read of
// the 48-bit hardware register would.
func (c *Counter) Value() int64 { return int64(c.value) }

// Raw returns the counter's unrounded accumulator. Engine conformance
// tests compare it bit-exactly: Value's truncation could mask
// sub-integer drift between execution engines.
func (c *Counter) Raw() float64 { return c.value }

// PMU is the per-core performance monitoring unit: programmable counters,
// optional fixed-function counters, and the time stamp counter.
type PMU struct {
	model *Model
	// Prog holds the programmable counters, Fixed the fixed-function ones.
	Prog  []Counter
	Fixed []Counter
	// tsc is the time stamp counter in cycles. Unlike the event counters
	// it cannot be disabled and counts in every privilege mode.
	tsc float64
	// pending holds overflow crossings awaiting collection.
	pending []Overflow
}

// ErrBadCounter reports an out-of-range counter index.
var ErrBadCounter = errors.New("cpu: counter index out of range")

// NewPMU returns the PMU for the given processor model.
func NewPMU(m *Model) *PMU {
	p := &PMU{
		model: m,
		Prog:  make([]Counter, m.NumProgrammable),
		Fixed: make([]Counter, m.NumFixed),
	}
	for i := range p.Fixed {
		p.Fixed[i].fixed = true
		p.Fixed[i].Config = CounterConfig{Event: m.FixedEvents[i], User: true, OS: true}
	}
	return p
}

// Model returns the processor model this PMU belongs to.
func (p *PMU) Model() *Model { return p.model }

// Configure programs programmable counter i. It validates that the event
// is supported by the micro-architecture — the check libpfm performs when
// translating event names.
func (p *PMU) Configure(i int, cfg CounterConfig) error {
	if i < 0 || i >= len(p.Prog) {
		return fmt.Errorf("%w: %d (model %s has %d)", ErrBadCounter, i, p.model.Tag, len(p.Prog))
	}
	if cfg.Event != EventNone && !SupportsEvent(p.model.Arch, cfg.Event) {
		return fmt.Errorf("cpu: event %s not supported on %s", cfg.Event, p.model.Arch)
	}
	p.Prog[i].Config = cfg
	return nil
}

// ConfigureFixed sets the privilege gating of fixed counter i. The event
// cannot be changed (limited programmability, Section 2.1).
func (p *PMU) ConfigureFixed(i int, user, os bool) error {
	if i < 0 || i >= len(p.Fixed) {
		return fmt.Errorf("%w: fixed %d (model %s has %d)", ErrBadCounter, i, p.model.Tag, len(p.Fixed))
	}
	p.Fixed[i].Config.User = user
	p.Fixed[i].Config.OS = os
	return nil
}

// Enable starts counting on the programmable counters in mask.
func (p *PMU) Enable(mask uint64) {
	for i := range p.Prog {
		if mask&(1<<uint(i)) != 0 {
			p.Prog[i].Enabled = true
		}
	}
}

// Disable stops counting on the programmable counters in mask.
func (p *PMU) Disable(mask uint64) {
	for i := range p.Prog {
		if mask&(1<<uint(i)) != 0 {
			p.Prog[i].Enabled = false
		}
	}
}

// Reset zeroes the programmable counters in mask.
func (p *PMU) Reset(mask uint64) {
	for i := range p.Prog {
		if mask&(1<<uint(i)) != 0 {
			p.Prog[i].value = 0
		}
	}
}

// EnableFixed enables all fixed counters.
func (p *PMU) EnableFixed() {
	for i := range p.Fixed {
		p.Fixed[i].Enabled = true
	}
}

// Value returns the value of programmable counter i.
func (p *PMU) Value(i int) (int64, error) {
	if i < 0 || i >= len(p.Prog) {
		return 0, fmt.Errorf("%w: %d", ErrBadCounter, i)
	}
	return p.Prog[i].Value(), nil
}

// SetValue overwrites the raw value of programmable counter i; kernel
// extensions use it to restore a thread's counters at context switch.
func (p *PMU) SetValue(i int, v int64) error {
	if i < 0 || i >= len(p.Prog) {
		return fmt.Errorf("%w: %d", ErrBadCounter, i)
	}
	p.Prog[i].value = float64(v)
	return nil
}

// TSC returns the time stamp counter.
func (p *PMU) TSC() int64 { return int64(p.tsc) }

// AddInstr credits n retired instructions executed in mode to every
// enabled counter counting EventInstrRetired in that mode.
func (p *PMU) AddInstr(mode Mode, n int64) {
	p.AddEvent(mode, EventInstrRetired, float64(n))
}

// AddCycles advances time by c cycles spent in mode: the TSC always
// advances; cycle-event counters advance when gated into the mode.
func (p *PMU) AddCycles(mode Mode, c float64) {
	p.tsc += c
	p.AddEvent(mode, EventCoreCycles, c)
}

// AddEvent credits n occurrences of ev in mode to all enabled, gated
// counters. n is fractional only for cycle events. Counters configured
// with an overflow period record their period crossings for the
// execution engine to collect via TakeOverflows.
func (p *PMU) AddEvent(mode Mode, ev Event, n float64) {
	for i := range p.Prog {
		ctr := &p.Prog[i]
		if ctr.Enabled && ctr.Config.Event == ev && ctr.Config.CountsIn(mode) {
			prev := ctr.value
			ctr.value += n
			if period := ctr.Config.OverflowPeriod; period > 0 {
				crossings := int64(ctr.value)/period - int64(prev)/period
				if crossings > 0 {
					p.pending = append(p.pending, Overflow{Counter: i, Crossings: crossings})
				}
			}
		}
	}
	for i := range p.Fixed {
		ctr := &p.Fixed[i]
		if ctr.Enabled && ctr.Config.Event == ev && ctr.Config.CountsIn(mode) {
			ctr.value += n
		}
	}
}

// ZeroState returns the PMU to its power-on counting state: every
// programmable counter disabled at zero, every fixed counter zeroed,
// the TSC reset, and pending overflows dropped. Counter *configuration*
// is left alone — infrastructures reprogram it per measurement — but no
// residue of earlier runs survives, which is what lets a pooled system
// serve byte-identical results regardless of its history.
func (p *PMU) ZeroState() {
	for i := range p.Prog {
		p.Prog[i].Enabled = false
		p.Prog[i].value = 0
	}
	for i := range p.Fixed {
		p.Fixed[i].Enabled = false
		p.Fixed[i].value = 0
	}
	p.tsc = 0
	p.pending = nil
}

// Overflow records counter period crossings awaiting interrupt delivery.
type Overflow struct {
	// Counter is the programmable counter index.
	Counter int
	// Crossings is how many period boundaries were crossed (bulk
	// advancement can cross several at once).
	Crossings int64
}

// TakeOverflows returns and clears the pending overflow records.
func (p *PMU) TakeOverflows() []Overflow {
	if len(p.pending) == 0 {
		return nil
	}
	out := p.pending
	p.pending = nil
	return out
}

// ArmedCounter describes an enabled counter with overflow sampling
// armed: its event and how many more events until the next period
// crossing.
type ArmedCounter struct {
	Counter  int
	Event    Event
	Headroom int64
}

// ArmedHeadrooms lists the armed counters gated into mode. The
// execution engine uses this to bound bulk advancement so that overflow
// interrupts fire at the crossing rather than at the end of a large
// chunk.
func (p *PMU) ArmedHeadrooms(mode Mode) []ArmedCounter {
	var out []ArmedCounter
	for i := range p.Prog {
		ctr := &p.Prog[i]
		period := ctr.Config.OverflowPeriod
		if !ctr.Enabled || period <= 0 || !ctr.Config.CountsIn(mode) {
			continue
		}
		v := int64(ctr.value)
		out = append(out, ArmedCounter{
			Counter:  i,
			Event:    ctr.Config.Event,
			Headroom: period - v%period,
		})
	}
	return out
}

// SkewExclusive models the attribution rounding that occurs when an
// interrupt saves and restores counter state mid-stream: delta
// instructions move between the user and kernel attributions. Counters
// counting user-only instructions gain delta, kernel-only counters lose
// it, and counters gated to both modes are — correctly — unaffected,
// since misattribution between modes preserves their total. Counters
// never go negative.
func (p *PMU) SkewExclusive(delta float64) {
	apply := func(ctr *Counter) {
		if !ctr.Enabled || ctr.Config.Event != EventInstrRetired {
			return
		}
		switch {
		case ctr.Config.User && !ctr.Config.OS:
			ctr.value += delta
		case ctr.Config.OS && !ctr.Config.User:
			ctr.value -= delta
		}
		if ctr.value < 0 {
			ctr.value = 0
		}
	}
	for i := range p.Prog {
		apply(&p.Prog[i])
	}
	for i := range p.Fixed {
		apply(&p.Fixed[i])
	}
}
