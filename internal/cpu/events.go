package cpu

import "fmt"

// Event identifies a micro-architectural event a performance counter can
// be programmed to count. The set mirrors the events exercised in the
// paper (retired instructions and unhalted cycles drive all figures;
// front-end events participate in the cycle model of Section 6).
type Event uint8

const (
	// EventNone marks an unconfigured counter.
	EventNone Event = iota
	// EventInstrRetired counts retired (non-speculative) instructions.
	EventInstrRetired
	// EventCoreCycles counts unhalted core clock cycles.
	EventCoreCycles
	// EventBrMispRetired counts retired mispredicted branches.
	EventBrMispRetired
	// EventICacheMiss counts instruction cache misses.
	EventICacheMiss
	// EventITLBMiss counts instruction TLB misses.
	EventITLBMiss
	// EventDCacheMiss counts data cache misses.
	EventDCacheMiss
	// EventBusAccess counts front-side-bus accesses.
	EventBusAccess

	numEvents
)

var eventNames = [...]string{
	EventNone:          "NONE",
	EventInstrRetired:  "INSTR_RETIRED",
	EventCoreCycles:    "CPU_CLK_UNHALTED",
	EventBrMispRetired: "BR_MISP_RETIRED",
	EventICacheMiss:    "ICACHE_MISS",
	EventITLBMiss:      "ITLB_MISS",
	EventDCacheMiss:    "DCACHE_MISS",
	EventBusAccess:     "BUS_ACCESS",
}

// String returns the generic event mnemonic.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// EventByName returns the event with the given generic mnemonic (the
// String form, e.g. "INSTR_RETIRED").
func EventByName(name string) (Event, error) {
	for ev := Event(1); ev < numEvents; ev++ {
		if eventNames[ev] == name {
			return ev, nil
		}
	}
	return EventNone, fmt.Errorf("cpu: unknown event %q", name)
}

// nativeEvent is a processor-specific event encoding, the level at which
// libpfm and libperfctr program the hardware. PAPI's preset tables map
// portable names onto these.
type nativeEvent struct {
	Name string // vendor mnemonic
	Code uint32 // event select encoding
}

// nativeEvents lists, per micro-architecture, the encoding of each generic
// event. A missing entry means the micro-architecture cannot count that
// event on a programmable counter. Encodings follow the respective
// vendor manuals (umask<<8 | event select).
var nativeEvents = map[Arch]map[Event]nativeEvent{
	NetBurst: {
		EventInstrRetired:  {"instr_retired.nbogusntag", 0x02},
		EventCoreCycles:    {"global_power_events.running", 0x13},
		EventBrMispRetired: {"mispred_branch_retired.nbogus", 0x03},
		EventICacheMiss:    {"bpu_fetch_request.tcmiss", 0x100},
		EventITLBMiss:      {"itlb_reference.miss", 0x218},
		EventDCacheMiss:    {"bsq_cache_reference.rd_2ndl_miss", 0x20c},
		EventBusAccess:     {"ioq_allocation.all_read", 0x1403},
	},
	Core2: {
		EventInstrRetired:  {"inst_retired.any_p", 0xc0},
		EventCoreCycles:    {"cpu_clk_unhalted.core_p", 0x3c},
		EventBrMispRetired: {"br_inst_retired.mispred", 0xc5},
		EventICacheMiss:    {"l1i_misses", 0x81},
		EventITLBMiss:      {"itlb.misses", 0x1282},
		EventDCacheMiss:    {"l1d_repl", 0x0f45},
		EventBusAccess:     {"bus_trans_any.all_agents", 0x2070},
	},
	K8: {
		EventInstrRetired:  {"retired_instructions", 0xc0},
		EventCoreCycles:    {"cpu_clocks_not_halted", 0x76},
		EventBrMispRetired: {"retired_mispredicted_branch_instructions", 0xc3},
		EventICacheMiss:    {"instruction_cache_misses", 0x81},
		EventITLBMiss:      {"l1_itlb_miss_and_l2_itlb_miss", 0x85},
		EventDCacheMiss:    {"data_cache_misses", 0x41},
		EventBusAccess:     {"memory_controller_requests", 0x1f0},
	},
}

// NativeEventName returns the vendor mnemonic for ev on arch, or "" if
// the event is not supported there.
func NativeEventName(arch Arch, ev Event) string {
	return nativeEvents[arch][ev].Name
}

// NativeEventCode returns the event-select encoding for ev on arch.
// ok is false when the micro-architecture cannot count the event.
func NativeEventCode(arch Arch, ev Event) (code uint32, ok bool) {
	ne, ok := nativeEvents[arch][ev]
	return ne.Code, ok
}

// SupportsEvent reports whether the micro-architecture can count ev on a
// programmable counter.
func SupportsEvent(arch Arch, ev Event) bool {
	_, ok := nativeEvents[arch][ev]
	return ok
}

// Events returns all generic events supported on arch, in stable order.
func Events(arch Arch) []Event {
	var out []Event
	for ev := EventInstrRetired; ev < numEvents; ev++ {
		if SupportsEvent(arch, ev) {
			out = append(out, ev)
		}
	}
	return out
}
