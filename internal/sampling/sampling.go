// Package sampling implements statistical profiling on counter overflow
// interrupts — the second performance-counter usage model whose accuracy
// Moore's work (cited in the paper's Section 9) contrasts with the
// counting model this study focuses on.
//
// A counter is programmed with an overflow period P; every P events the
// PMU raises an interrupt and the profiler attributes one sample to the
// code address executing at that moment. Multiplying a region's sample
// count by P estimates its event count. Two accuracy questions arise,
// and both are measurable here:
//
//   - estimation error: how far sample*period lands from the true count
//     (quantization and phase effects), and
//   - perturbation: the overflow handler's own instructions inflate any
//     concurrently running user+kernel measurement.
package sampling

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// HandlerCost is the kernel instruction count of the PMU interrupt
// handler (sample capture, buffer write, APIC acknowledgment). Exported
// because it quantifies the sampling model's perturbation — one
// HandlerCost of kernel instructions per recorded sample lands in any
// concurrently running user+kernel count — which docs/ACCURACY.md
// documents as the cost of tightening the quantization bracket.
const HandlerCost = 420

// samplingCounter is the programmable counter index the profiler uses.
// Profilers conventionally claim the last counter so event-counting
// users keep the low indices.
const samplingCounter = 0

// Sample is one overflow event attributed to a code address.
type Sample struct {
	Addr uint64
	Mode cpu.Mode
}

// Profile is the outcome of a profiling run.
type Profile struct {
	// Period is the sampling period in events.
	Period int64
	// Samples lists every recorded sample in order.
	Samples []Sample
	// Lost counts overflow crossings dropped while the PMU interrupt
	// was masked.
	Lost int64
	// TrueCount is the exact number of events that occurred while the
	// profiled counter was enabled (ground truth from the simulator).
	TrueCount int64
}

// Estimate returns the profile's event-count estimate: samples times
// period.
func (p *Profile) Estimate() int64 {
	return int64(len(p.Samples)) * p.Period
}

// RelativeError returns (estimate - true) / true; 0 when the true count
// is zero.
func (p *Profile) RelativeError() float64 {
	if p.TrueCount == 0 {
		return 0
	}
	return float64(p.Estimate()-p.TrueCount) / float64(p.TrueCount)
}

// Hotspots returns per-address sample counts, densest first.
func (p *Profile) Hotspots() []Hotspot {
	byAddr := map[uint64]int{}
	for _, s := range p.Samples {
		byAddr[s.Addr]++
	}
	out := make([]Hotspot, 0, len(byAddr))
	for a, n := range byAddr {
		out = append(out, Hotspot{Addr: a, Samples: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Hotspot is one address bucket of a profile.
type Hotspot struct {
	Addr    uint64
	Samples int
}

// Profiler drives sampling runs on a kernel.
type Profiler struct {
	k      *kernel.Kernel
	event  cpu.Event
	period int64

	// Runner is the execution engine for profiled runs; nil uses the
	// core's interpreter directly. With a sampling consumer installed
	// the compiled engine steps every instruction anyway (overflow
	// interrupts must fire at exact crossings), so the choice is about
	// uniform routing and conformance testing, not speed.
	Runner cpu.Runner
}

// ErrBadPeriod reports a non-positive sampling period.
var ErrBadPeriod = errors.New("sampling: period must be positive")

// New returns a profiler for the given event and overflow period.
func New(k *kernel.Kernel, event cpu.Event, period int64) (*Profiler, error) {
	if period <= 0 {
		return nil, ErrBadPeriod
	}
	if !cpu.SupportsEvent(k.Model().Arch, event) {
		return nil, fmt.Errorf("sampling: event %s not supported on %s", event, k.Model().Arch)
	}
	return &Profiler{k: k, event: event, period: period}, nil
}

// Run profiles one program execution: the sampling counter is
// programmed with the profiler's event and period, the PMU interrupt
// handler is installed, and the program runs to completion.
func (p *Profiler) Run(prog *isa.Program, seed uint64) (*Profile, error) {
	c := p.k.Core
	if err := c.PMU.Configure(samplingCounter, cpu.CounterConfig{
		Event: p.event, User: true, OS: true, OverflowPeriod: p.period,
	}); err != nil {
		return nil, err
	}
	c.PMU.Reset(1 << samplingCounter)
	c.PMU.Enable(1 << samplingCounter)

	prof := &Profile{Period: p.period}
	c.OnOverflow = func(ctr int, addr uint64, mode cpu.Mode) {
		if ctr == samplingCounter {
			prof.Samples = append(prof.Samples, Sample{Addr: addr, Mode: mode})
		}
	}
	hb := isa.NewBuilder("pmu_overflow", 0xffff_c000_0000)
	hb.ALUBlock(HandlerCost)
	hb.Emit(isa.IRet())
	c.OverflowHandler = hb.Build()
	defer func() {
		c.OnOverflow = nil
		c.OverflowHandler = nil
		c.PMU.Disable(1 << samplingCounter)
	}()

	c.SeedRun(seed)
	if err := p.runProg(c, prog); err != nil {
		return nil, err
	}
	v, err := c.PMU.Value(samplingCounter)
	if err != nil {
		return nil, err
	}
	prof.TrueCount = v
	prof.Lost = c.OverflowsLost
	return prof, nil
}

// runProg executes the profiled program on the configured engine.
func (p *Profiler) runProg(c *cpu.Core, prog *isa.Program) error {
	if p.Runner != nil {
		return p.Runner.RunProgram(c, prog)
	}
	c.NestedRun = nil
	return c.Run(prog)
}
