package sampling

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

func loopProgram(iters int64, base uint64) *isa.Program {
	b := isa.NewBuilder("profiled-loop", base)
	b.Emit(isa.ALU())
	b.Loop(iters, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	return b.Build()
}

func TestNewValidation(t *testing.T) {
	k := kernel.New(cpu.Athlon64X2)
	if _, err := New(k, cpu.EventInstrRetired, 0); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("zero period: %v", err)
	}
	if _, err := New(k, cpu.Event(99), 1000); err == nil {
		t.Error("bad event accepted")
	}
	if _, err := New(k, cpu.EventInstrRetired, 1000); err != nil {
		t.Errorf("valid profiler rejected: %v", err)
	}
}

// TestEstimateAccuracy: sampling a deterministic loop must estimate its
// instruction count within the period quantization.
func TestEstimateAccuracy(t *testing.T) {
	k := kernel.New(cpu.Athlon64X2)
	p, err := New(k, cpu.EventInstrRetired, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := p.Run(loopProgram(1_000_000, 0x4000), 3)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TrueCount < 3_000_000 {
		t.Fatalf("true count = %d, want >= 3e6", prof.TrueCount)
	}
	re := prof.RelativeError()
	if re < -0.02 || re > 0.05 {
		t.Errorf("relative error = %v, want within a few percent", re)
	}
	if len(prof.Samples) < 290 {
		t.Errorf("samples = %d, want ~300+", len(prof.Samples))
	}
}

// TestHotspotAttribution: nearly all samples of a tight loop must land
// on the loop body address.
func TestHotspotAttribution(t *testing.T) {
	k := kernel.New(cpu.Athlon64X2)
	p, err := New(k, cpu.EventInstrRetired, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	const base = 0x8000
	prog := loopProgram(500_000, base)
	prof, err := p.Run(prog, 7)
	if err != nil {
		t.Fatal(err)
	}
	hs := prof.Hotspots()
	if len(hs) == 0 {
		t.Fatal("no hotspots")
	}
	// The body starts after the 4-byte init instruction... its address
	// is the second instruction of the program.
	bodyAddr := prog.Addr(2)
	if hs[0].Addr != bodyAddr {
		t.Errorf("hottest address %#x, want loop body %#x", hs[0].Addr, bodyAddr)
	}
	if frac := float64(hs[0].Samples) / float64(len(prof.Samples)); frac < 0.95 {
		t.Errorf("loop body holds %.0f%% of samples, want >95%%", frac*100)
	}
}

// TestPerturbation: the overflow handlers execute kernel instructions,
// so a concurrent user+kernel count is inflated by roughly
// samples*HandlerCost — the cost of the sampling usage model.
func TestPerturbation(t *testing.T) {
	k := kernel.New(cpu.Athlon64X2)
	c := k.Core
	// Counter 1 observes user+kernel instructions while counter 0
	// drives the sampler.
	if err := c.PMU.Configure(1, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: true, OS: true}); err != nil {
		t.Fatal(err)
	}
	c.PMU.Enable(0b10)

	p, err := New(k, cpu.EventInstrRetired, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := p.Run(loopProgram(1_000_000, 0x4000), 11)
	if err != nil {
		t.Fatal(err)
	}
	observed, _ := c.PMU.Value(1)
	trueInstr := int64(1 + 3*1_000_000 + 1)
	excess := observed - trueInstr
	wantMin := int64(len(prof.Samples)) * (HandlerCost - 50)
	if excess < wantMin {
		t.Errorf("perturbation = %d kernel instructions, want >= %d (samples=%d)", excess, wantMin, len(prof.Samples))
	}
}

// TestShortPeriodLosesSamples: a period shorter than the handler's own
// instruction count makes the handler re-cross the period while the
// interrupt is masked, so crossings are dropped.
func TestShortPeriodLosesSamples(t *testing.T) {
	k := kernel.New(cpu.Athlon64X2)
	p, err := New(k, cpu.EventInstrRetired, HandlerCost/2)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := p.Run(loopProgram(100_000, 0x4000), 13)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Lost == 0 {
		t.Error("expected lost crossings with a period below the handler cost")
	}
}

// TestDeterminism: identical seeds reproduce identical profiles.
func TestDeterminism(t *testing.T) {
	run := func() int {
		k := kernel.New(cpu.Core2Duo)
		p, err := New(k, cpu.EventInstrRetired, 7_000)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := p.Run(loopProgram(300_000, 0x4000), 99)
		if err != nil {
			t.Fatal(err)
		}
		return len(prof.Samples)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("profiles differ: %d vs %d samples", a, b)
	}
}

func TestCycleSampling(t *testing.T) {
	k := kernel.New(cpu.PentiumD)
	p, err := New(k, cpu.EventCoreCycles, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := p.Run(loopProgram(1_000_000, 0x4000), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Samples) == 0 {
		t.Fatal("no cycle samples")
	}
	if re := prof.RelativeError(); re < -0.05 || re > 0.05 {
		t.Errorf("cycle estimate error = %v", re)
	}
}
