// Package xrand provides a small, fully deterministic pseudo-random
// number generator used throughout the simulator.
//
// Reproducibility is a hard requirement of this study: every experiment
// must produce identical numbers across runs, machines, and Go releases,
// so experiment tables in EXPERIMENTS.md stay comparable. The generator is
// SplitMix64 (Steele, Lea, Flood 2014), which is tiny, fast, passes BigCrush
// when used as a stream, and — unlike math/rand sources — has output fully
// specified by this package alone.
package xrand

import "math"

// Rand is a deterministic PRNG. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Mix combines values into a well-distributed 64-bit seed. It hashes each
// input through the SplitMix64 finalizer, so Mix(a, b) and Mix(b, a)
// differ. Use it to derive independent per-configuration seeds.
func Mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= finalize(h + v)
		h = h*0x2545f4914f6cdd1d + 0x632be59bd9b4e019
	}
	return finalize(h)
}

func finalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return finalize(r.state)
}

// Float64 returns a float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns an int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns an int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed float with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	// Avoid log(0) by keeping u1 strictly positive.
	u1 := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Geometric returns a sample in [0, max] with decaying probability:
// P(k+1)/P(k) = p. It models "occasionally longer" code paths.
func (r *Rand) Geometric(max int, p float64) int {
	k := 0
	for k < max && r.Float64() < p {
		k++
	}
	return k
}
