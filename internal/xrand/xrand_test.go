package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, s := range seen {
		if !s {
			t.Errorf("value %d never produced in 1000 draws", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int63n(-1) did not panic")
		}
	}()
	New(1).Int63n(-1)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGeometricBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			k := r.Geometric(5, 0.4)
			if k < 0 || k > 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricZeroP(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if k := r.Geometric(5, 0); k != 0 {
			t.Fatalf("Geometric(max, 0) = %d, want 0", k)
		}
	}
}

func TestMix(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix should be order-sensitive")
	}
	if Mix(1) == Mix(2) {
		t.Error("Mix should distinguish inputs")
	}
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Error("Mix should be deterministic")
	}
}
