package bayes

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ViolationSigma is the standardized-residual threshold past which a
// constraint is flagged violated: the inputs disagree with the
// invariant by more than this many standard errors of the constraint
// function, the event-validation verdict of the residual report.
const ViolationSigma = 3.0

// Residual is one constraint's consistency report, evaluated at the
// *input* means (before conditioning): how far the measurements are
// from satisfying the invariant, in raw units and in standard errors.
type Residual struct {
	// Constraint names the invariant (Constraint.Name of the canonical
	// form).
	Constraint string
	// Value is lhs - rhs at the input means: for an equality, the
	// signed miss; for a <= inequality, positive means violated.
	Value float64
	// Sigma standardizes Value by the prior standard error of the
	// constraint function sqrt(a·V·aᵀ); zero when every participating
	// event is exact.
	Sigma float64
	// Violated reports the event-validation verdict: the inputs break
	// the invariant beyond ViolationSigma standard errors (or at all,
	// when the participating events are exact).
	Violated bool
}

// Result is a joint posterior over the input events.
type Result struct {
	// Events echoes the input event order; all slices align with it.
	Events []string
	// Mean is the posterior (MAP) mean per event.
	Mean []float64
	// Variance is the posterior marginal variance per event —
	// structurally never larger than the input variance.
	Variance []float64
	// Cov is the full posterior covariance in Events order.
	Cov *stats.Matrix
	// Residuals reports every constraint's consistency at the inputs,
	// in canonical-model order.
	Residuals []Residual
	// Active names the constraints active at the solution (all
	// equalities, plus the inequalities the projection landed on); only
	// these contributed conditioning to the posterior.
	Active []string
}

// row is one constraint lowered onto the solve's index space.
type row struct {
	c     Constraint
	coef  []float64 // dense over all events
	rhs   float64   // RHS minus the fixed events' contribution
	free  []int     // indices with positive variance and non-zero coef
	scale float64   // sqrt(a·V·aᵀ) over free events
}

// Solve conditions the independent Gaussians N(means[i], variances[i])
// on the model's constraints and returns the joint posterior. Events,
// means, and variances align by index; events must be distinct, means
// finite, variances finite and non-negative. A zero variance marks an
// exact observation: the event is held fixed, its value substituted
// into every constraint.
//
// Equality constraints condition in closed form; inequalities are
// projected by an active-set loop. Constraints whose events are all
// exact contribute only a consistency residual. The posterior marginal
// variance of every event is at most its input variance — constraints
// add information, never noise — which is the guarantee the /infer
// endpoint and the planner's posterior fusion rely on.
func Solve(events []string, means, variances []float64, model Model) (*Result, error) {
	n := len(events)
	if len(means) != n || len(variances) != n {
		return nil, fmt.Errorf("%w: %d events, %d means, %d variances",
			ErrBadInput, n, len(means), len(variances))
	}
	index := make(map[string]int, n)
	for i, ev := range events {
		if ev == "" {
			return nil, fmt.Errorf("%w: empty event name at index %d", ErrBadInput, i)
		}
		if _, dup := index[ev]; dup {
			return nil, fmt.Errorf("%w: duplicate event %s", ErrBadInput, ev)
		}
		index[ev] = i
		if !isFinite(means[i]) {
			return nil, fmt.Errorf("%w: non-finite mean %v for %s", ErrBadInput, means[i], ev)
		}
		if !isFinite(variances[i]) || variances[i] < 0 {
			return nil, fmt.Errorf("%w: bad variance %v for %s", ErrBadInput, variances[i], ev)
		}
	}
	canon, err := model.Canonical()
	if err != nil {
		return nil, err
	}

	// Lower constraints onto the index space and split the event set
	// into free (noisy) and fixed (exact) coordinates.
	rows := make([]*row, 0, len(canon.Constraints))
	for _, c := range canon.Constraints {
		r := &row{c: c, coef: make([]float64, n), rhs: c.RHS}
		for _, t := range c.Terms {
			i, ok := index[t.Event]
			if !ok {
				return nil, fmt.Errorf("%w: %s (constraint %q)", ErrUnknownEvent, t.Event, c.String())
			}
			r.coef[i] = t.Coef
		}
		for i, a := range r.coef {
			if a == 0 {
				continue
			}
			if variances[i] > 0 {
				r.free = append(r.free, i)
				r.scale += a * a * variances[i]
			} else {
				r.rhs -= a * means[i] // substitute exact observations
			}
		}
		r.scale = math.Sqrt(r.scale)
		rows = append(rows, r)
	}

	res := &Result{
		Events:   events,
		Mean:     append([]float64(nil), means...),
		Variance: append([]float64(nil), variances...),
		Cov:      stats.NewMatrix(n, n),
	}
	for i, v := range variances {
		res.Cov.Set(i, i, v)
	}

	// Consistency residuals at the input means, every constraint.
	for _, r := range rows {
		value := -r.rhs
		for _, i := range r.free {
			value += r.coef[i] * means[i]
		}
		rr := Residual{Constraint: r.c.Name, Value: value}
		tol := residualTol(r, means)
		if r.scale > 0 {
			rr.Sigma = value / r.scale
			if r.c.Op == OpEq {
				rr.Violated = math.Abs(rr.Sigma) > ViolationSigma
			} else {
				rr.Violated = rr.Sigma > ViolationSigma
			}
		} else if r.c.Op == OpEq {
			rr.Violated = math.Abs(value) > tol
		} else {
			rr.Violated = value > tol
		}
		res.Residuals = append(res.Residuals, rr)
	}

	// Partition solvable rows: equalities enter the active set
	// permanently; inequalities move in and out of it.
	var equalities, inequalities []*row
	for _, r := range rows {
		if len(r.free) == 0 {
			continue // consistency-only: nothing to condition
		}
		if r.c.Op == OpEq {
			equalities = append(equalities, r)
		} else {
			inequalities = append(inequalities, r)
		}
	}
	if len(equalities) == 0 && len(inequalities) == 0 {
		return res, nil
	}

	sol := &solver{means: means, vars: variances}
	active := append([]*row(nil), equalities...)
	x, cov, _, err := sol.solve(active)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDependent, err)
	}

	// Active-set projection: admit the most violated inequality, retire
	// active inequalities whose multiplier turns negative, repeat. The
	// iteration bound is a safety net — each admit/retire strictly
	// improves the objective for this strictly convex problem.
	unaddable := make(map[*row]bool)
	inActive := make(map[*row]bool)
	for iter := 0; iter < 4*len(inequalities)+8; iter++ {
		var worst *row
		worstViol := 0.0
		for _, r := range inequalities {
			if inActive[r] || unaddable[r] {
				continue
			}
			value := -r.rhs
			for _, i := range r.free {
				value += r.coef[i] * x[i]
			}
			if tol := residualTol(r, means); value > tol && value > worstViol {
				worst, worstViol = r, value
			}
		}
		if worst != nil {
			trial := append(append([]*row(nil), active...), worst)
			tx, tcov, _, err := sol.solve(trial)
			if err != nil {
				// Linearly dependent with the current active set: the
				// violation is already pinned by other constraints to
				// working precision; skip it permanently.
				unaddable[worst] = true
				continue
			}
			active, x, cov = trial, tx, tcov
			inActive[worst] = true
			continue
		}
		// No violations: check KKT signs of active inequalities.
		_, _, lam, err := sol.solve(active)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDependent, err)
		}
		dropIdx := -1
		dropLam := -1e-12
		for t, r := range active {
			if r.c.Op != OpLe {
				continue
			}
			if lam[t] < dropLam {
				dropIdx, dropLam = t, lam[t]
			}
		}
		if dropIdx < 0 {
			break
		}
		dropped := active[dropIdx]
		active = append(active[:dropIdx:dropIdx], active[dropIdx+1:]...)
		inActive[dropped] = false
		x, cov, _, err = sol.solve(active)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDependent, err)
		}
	}

	// Assemble the posterior, clamping the marginals so the never-widen
	// guarantee survives floating-point error: the correction term is a
	// quadratic form, non-negative by construction.
	for i := 0; i < n; i++ {
		res.Mean[i] = x[i]
		v := cov.At(i, i)
		if v < 0 {
			v = 0
		}
		if v > variances[i] {
			v = variances[i]
		}
		res.Variance[i] = v
		cov.Set(i, i, v)
	}
	res.Cov = cov
	for _, r := range active {
		res.Active = append(res.Active, r.c.Name)
	}
	return res, nil
}

// residualTol is the absolute tolerance below which a constraint
// function's value counts as satisfied, scaled to the magnitudes
// involved so huge counts and tiny ones get equivalent treatment.
func residualTol(r *row, means []float64) float64 {
	scale := math.Abs(r.rhs)
	for i, a := range r.coef {
		if a != 0 {
			scale = math.Max(scale, math.Abs(a*means[i]))
		}
	}
	return 1e-9 * math.Max(scale, 1)
}

// solver carries the prior over the full index space. Fixed events
// (zero variance) simply never move: constraint rows exclude them
// (their contribution is folded into rhs), and their covariance rows
// stay zero.
type solver struct {
	means []float64
	vars  []float64
}

// solve conditions the prior on the active rows taken as equalities:
//
//	S = A·V·Aᵀ, λ = S⁻¹(A·m - b), x = m - V·Aᵀ·λ, Σ = V - V·Aᵀ·S⁻¹·A·V
//
// and returns the posterior mean, covariance, and the multipliers λ
// (whose signs the active-set loop inspects). A singular S means the
// rows are linearly dependent.
func (s *solver) solve(active []*row) (x []float64, cov *stats.Matrix, lam []float64, err error) {
	n := len(s.means)
	x = append([]float64(nil), s.means...)
	cov = stats.NewMatrix(n, n)
	for i, v := range s.vars {
		cov.Set(i, i, v)
	}
	k := len(active)
	if k == 0 {
		return x, cov, nil, nil
	}

	// S = A V Aᵀ and the constraint misfit A·m - b.
	smat := stats.NewMatrix(k, k)
	misfit := make([]float64, k)
	for a, ra := range active {
		misfit[a] = -ra.rhs
		for _, i := range ra.free {
			misfit[a] += ra.coef[i] * s.means[i]
		}
		for b := 0; b <= a; b++ {
			rb := active[b]
			sum := 0.0
			for _, i := range ra.free {
				if c := rb.coef[i]; c != 0 {
					sum += ra.coef[i] * c * s.vars[i]
				}
			}
			smat.Set(a, b, sum)
			smat.Set(b, a, sum)
		}
	}
	ch, err := stats.NewCholesky(smat)
	if err != nil {
		return nil, nil, nil, err
	}
	lam = ch.Solve(misfit)

	// x = m - V Aᵀ λ.
	for a, ra := range active {
		for _, i := range ra.free {
			x[i] -= s.vars[i] * ra.coef[i] * lam[a]
		}
	}

	// Σ = V - C S⁻¹ Cᵀ with C = V Aᵀ (n x k). Column j of Cᵀ is C's
	// row j; one triangular solve per event with any constraint mass.
	cmat := make([][]float64, n) // C rows, nil when the event is untouched
	for a, ra := range active {
		for _, i := range ra.free {
			if cmat[i] == nil {
				cmat[i] = make([]float64, k)
			}
			cmat[i][a] = s.vars[i] * ra.coef[i]
		}
	}
	sinv := make([][]float64, n) // S⁻¹ Cᵀ columns per event
	for i := 0; i < n; i++ {
		if cmat[i] != nil {
			sinv[i] = ch.Solve(cmat[i])
		}
	}
	for i := 0; i < n; i++ {
		if cmat[i] == nil {
			continue
		}
		for j := i; j < n; j++ {
			if cmat[j] == nil {
				continue
			}
			corr := 0.0
			for a := 0; a < k; a++ {
				corr += cmat[i][a] * sinv[j][a]
			}
			v := cov.At(i, j) - corr
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return x, cov, lam, nil
}
