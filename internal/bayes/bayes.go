// Package bayes is the constraint-graph inference engine of the
// measurement service: it encodes the algebraic relationships between
// hardware events — linear equality and inequality invariants like
// ITLB_MISS <= ICACHE_MISS or CYCLES >= INSTR/width — as a
// probabilistic model over per-event Gaussian measurements, and infers
// all events jointly instead of treating them independently.
//
// The source paper shows each counter measurement carries correlated
// error from overhead, multiplexing, and non-determinism;
// internal/accuracy models those errors per event, and internal/plan
// fuses replicas of the *same* event. This package closes the
// remaining gap after BayesPerf (Banerjee et al., 2021): events are
// not independent quantities — the ISA ties them together — so a
// measurement of one event is evidence about the others. Encoding the
// ties as linear constraints and conditioning the joint Gaussian on
// them yields posterior estimates whose marginal variances can only
// shrink, and standardized constraint residuals that flag events
// violating their invariants, the event-validation check of Röhl et
// al. (2017) as a service primitive.
//
// The machinery is deliberately small and exact:
//
//   - Each input event i carries a Gaussian N(mean_i, variance_i)
//     taken from the accuracy model (dispersion, extrapolation,
//     calibration — whatever produced it).
//   - Equality constraints A·x = b condition the joint Gaussian in
//     closed form: the posterior is N(m - VAᵀS⁻¹(Am-b), V - VAᵀS⁻¹AV)
//     with S = AVAᵀ, solved by the Cholesky kernel of internal/stats.
//     The subtracted covariance term is positive semi-definite, so no
//     posterior interval is ever wider than its input — the guarantee
//     the property tests pin down.
//   - Inequality constraints G·x <= h are handled by active-set
//     projection: solve with the current active set, admit the most
//     violated inequality as an equality, retire active ones whose
//     KKT multiplier turns negative, repeat. The result is the MAP
//     estimate of the truncated Gaussian, with the active constraints
//     contributing their conditioning to the posterior covariance.
//
// Everything is pure arithmetic on the inputs — deterministic and
// side-effect free — so the service layer (Engine, POST /infer) can
// coalesce identical requests exactly as /measure does, and the
// planner can run the solver over fused estimates without perturbing
// its own determinism contract.
package bayes

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Constraint operators. OpGe exists on the wire for ergonomics;
// Canonical rewrites it to OpLe by negation.
const (
	OpEq = "="
	OpLe = "<="
	OpGe = ">="
)

// Errors reported by model validation and the solver.
var (
	// ErrBadConstraint reports a malformed constraint (no terms, unknown
	// operator, non-finite coefficient).
	ErrBadConstraint = errors.New("bayes: bad constraint")
	// ErrUnknownEvent reports a constraint term naming an event absent
	// from the solve's input set.
	ErrUnknownEvent = errors.New("bayes: constraint references unknown event")
	// ErrDependent reports equality constraints that are linearly
	// dependent (redundant or contradictory) over the free events.
	ErrDependent = errors.New("bayes: linearly dependent equality constraints")
	// ErrBadInput reports a malformed observation (non-finite mean,
	// negative or non-finite variance).
	ErrBadInput = errors.New("bayes: bad observation")
)

// Term is one addend of a constraint's linear form: Coef times the
// named event's count.
type Term struct {
	Event string  `json:"event"`
	Coef  float64 `json:"coef"`
}

// Constraint is one linear invariant over named events:
// Σ Coef_i · x_{Event_i}  Op  RHS.
type Constraint struct {
	// Name identifies the invariant in residual reports. Optional; the
	// canonical form derives a stable name from the terms when empty.
	Name  string  `json:"name,omitempty"`
	Terms []Term  `json:"terms"`
	Op    string  `json:"op"`
	RHS   float64 `json:"rhs"`
}

// Canonical returns the constraint in canonical form: terms merged by
// event and sorted by event name, zero coefficients dropped, OpGe
// rewritten to OpLe by negating both sides, and an empty Name replaced
// by a rendering of the linear form. Two constraints meaning the same
// invariant canonicalize identically, which is what makes request keys
// built from them stable.
func (c Constraint) Canonical() (Constraint, error) {
	switch c.Op {
	case OpEq, OpLe, OpGe:
	default:
		return c, fmt.Errorf("%w: operator %q (want =, <=, >=)", ErrBadConstraint, c.Op)
	}
	if !isFinite(c.RHS) {
		return c, fmt.Errorf("%w: non-finite right-hand side %v", ErrBadConstraint, c.RHS)
	}
	merged := make(map[string]float64)
	for _, t := range c.Terms {
		if t.Event == "" {
			return c, fmt.Errorf("%w: term with empty event", ErrBadConstraint)
		}
		if !isFinite(t.Coef) {
			return c, fmt.Errorf("%w: non-finite coefficient %v for %s", ErrBadConstraint, t.Coef, t.Event)
		}
		merged[t.Event] += t.Coef
	}
	events := make([]string, 0, len(merged))
	for ev, coef := range merged {
		if coef != 0 {
			events = append(events, ev)
		}
	}
	if len(events) == 0 {
		return c, fmt.Errorf("%w: no non-zero terms", ErrBadConstraint)
	}
	sort.Strings(events)
	out := Constraint{Name: c.Name, Op: c.Op, RHS: c.RHS}
	for _, ev := range events {
		out.Terms = append(out.Terms, Term{Event: ev, Coef: merged[ev]})
	}
	if out.Op == OpGe {
		out.Op = OpLe
		out.RHS = -out.RHS
		for i := range out.Terms {
			out.Terms[i].Coef = -out.Terms[i].Coef
		}
	}
	if out.Name == "" {
		out.Name = out.render()
	}
	return out, nil
}

// render spells the canonical linear form, used as the default name.
func (c Constraint) render() string {
	var b strings.Builder
	for i, t := range c.Terms {
		if i > 0 {
			if t.Coef >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
			}
		} else if t.Coef < 0 {
			b.WriteString("-")
		}
		if a := math.Abs(t.Coef); a != 1 {
			fmt.Fprintf(&b, "%g*", a)
		}
		b.WriteString(t.Event)
	}
	fmt.Fprintf(&b, " %s %g", c.Op, c.RHS)
	return b.String()
}

// String returns the constraint's name, or its rendered linear form.
func (c Constraint) String() string {
	if c.Name != "" {
		return c.Name
	}
	return c.render()
}

// Model is a declarative set of event invariants. Zero value: no
// constraints, inference degenerates to the inputs.
type Model struct {
	Constraints []Constraint
}

// Canonical canonicalizes every constraint (see Constraint.Canonical).
func (m Model) Canonical() (Model, error) {
	out := Model{Constraints: make([]Constraint, 0, len(m.Constraints))}
	for i, c := range m.Constraints {
		cc, err := c.Canonical()
		if err != nil {
			return m, fmt.Errorf("constraint %d: %w", i, err)
		}
		out.Constraints = append(out.Constraints, cc)
	}
	return out, nil
}

// Restrict returns the model's constraints whose events all appear in
// the given set — the subset a solve over exactly those events can
// use. The built-in library is written over the full ISA event set and
// restricted per request.
func (m Model) Restrict(events []string) Model {
	have := make(map[string]bool, len(events))
	for _, ev := range events {
		have[ev] = true
	}
	var out Model
	for _, c := range m.Constraints {
		ok := true
		for _, t := range c.Terms {
			if !have[t.Event] {
				ok = false
				break
			}
		}
		if ok {
			out.Constraints = append(out.Constraints, c)
		}
	}
	return out
}

// Events returns the sorted set of events the model's constraints
// reference.
func (m Model) Events() []string {
	set := make(map[string]bool)
	for _, c := range m.Constraints {
		for _, t := range c.Terms {
			set[t.Event] = true
		}
	}
	out := make([]string, 0, len(set))
	for ev := range set {
		out = append(out, ev)
	}
	sort.Strings(out)
	return out
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
