package bayes

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
)

// TestPosteriorNeverWiderProperty is the subsystem's core guarantee on
// synthetic ground truth: for constraint-consistent truth and any
// noise draw, every posterior marginal variance is at most its input
// variance — constraints add information, never noise.
func TestPosteriorNeverWiderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := Model{Constraints: []Constraint{
		{
			Name: "decompose",
			Terms: []Term{
				{Event: "TOTAL", Coef: 1}, {Event: "A", Coef: -1}, {Event: "B", Coef: -1},
			},
			Op: OpEq, RHS: 0,
		},
		{
			Name:  "a-le-total",
			Terms: []Term{{Event: "A", Coef: 1}, {Event: "TOTAL", Coef: -1}},
			Op:    OpLe, RHS: 0,
		},
		{
			Name:  "b-nonneg",
			Terms: []Term{{Event: "B", Coef: -1}},
			Op:    OpLe, RHS: 0,
		},
	}}
	events := []string{"TOTAL", "A", "B"}
	for trial := 0; trial < 500; trial++ {
		a := rng.Float64() * 1000
		b := rng.Float64() * 100 // often near zero: exercises the nonneg projection
		truth := []float64{a + b, a, b}
		means := make([]float64, 3)
		vars := make([]float64, 3)
		for i := range truth {
			sd := 1 + rng.Float64()*50
			vars[i] = sd * sd
			means[i] = truth[i] + sd*rng.NormFloat64()
		}
		res, err := Solve(events, means, vars, model)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range events {
			if res.Variance[i] > vars[i] {
				t.Fatalf("trial %d: %s posterior variance %v wider than prior %v",
					trial, events[i], res.Variance[i], vars[i])
			}
		}
		// The equality must hold exactly at the posterior.
		if viol := res.Mean[0] - res.Mean[1] - res.Mean[2]; math.Abs(viol) > 1e-6 {
			t.Fatalf("trial %d: posterior breaks decompose by %v", trial, viol)
		}
	}
}

// TestPosteriorCoverageProperty checks that conditioning on a true
// equality keeps nominal CI coverage on synthetic ground truth: the
// posterior is the exact conditional Gaussian, so 95% intervals must
// cover ~95% of the time — while being strictly narrower than the
// unconstrained inputs.
func TestPosteriorCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := Model{Constraints: []Constraint{{
		Name: "decompose",
		Terms: []Term{
			{Event: "TOTAL", Coef: 1}, {Event: "A", Coef: -1}, {Event: "B", Coef: -1},
		},
		Op: OpEq, RHS: 0,
	}}}
	events := []string{"TOTAL", "A", "B"}
	truth := []float64{1500, 1000, 500}
	sds := []float64{30, 20, 25}
	z := stats.NormalQuantile(0.975)

	const trials = 3000
	covered := make([]int, 3)
	var priorW, postW float64
	var priorSE, postSE float64 // squared error of the point estimates
	for trial := 0; trial < trials; trial++ {
		means := make([]float64, 3)
		vars := make([]float64, 3)
		for i := range truth {
			means[i] = truth[i] + sds[i]*rng.NormFloat64()
			vars[i] = sds[i] * sds[i]
		}
		res, err := Solve(events, means, vars, model)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range events {
			half := z * math.Sqrt(res.Variance[i])
			if math.Abs(res.Mean[i]-truth[i]) <= half {
				covered[i]++
			}
			priorW += z * sds[i]
			postW += half
			priorSE += (means[i] - truth[i]) * (means[i] - truth[i])
			postSE += (res.Mean[i] - truth[i]) * (res.Mean[i] - truth[i])
		}
	}
	for i, ev := range events {
		rate := float64(covered[i]) / trials
		if rate < 0.93 || rate > 0.97 {
			t.Errorf("%s: coverage %.3f outside [0.93, 0.97]", ev, rate)
		}
	}
	if postW >= priorW {
		t.Errorf("posterior intervals not narrower: %v vs %v", postW/trials, priorW/trials)
	}
	if postSE >= priorSE {
		t.Errorf("posterior point estimates not more accurate: MSE %v vs %v", postSE/trials, priorSE/trials)
	}
}

// TestLibraryConsistentOnSimulatedTruth draws event vectors satisfying
// the simulator's structural invariants, perturbs them, and checks the
// library model never widens an interval, keeps posteriors feasible,
// and flags no residual on consistent noise-free inputs.
func TestLibraryConsistentOnSimulatedTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, proc := range cpu.AllModels {
		lib := Library(proc)
		events := []string{
			"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED",
			"ICACHE_MISS", "ITLB_MISS", "DCACHE_MISS",
		}
		model := lib.Restrict(events)
		width := float64(proc.RetireWidth)
		for trial := 0; trial < 200; trial++ {
			instr := 1000 + rng.Float64()*1e6
			// Truth anywhere up to the peak retire rate — including the
			// loop fast-forward region above the sustained BaseIPC.
			cycles := instr/width*(1+rng.Float64()) + 1
			icache := rng.Float64() * instr / 100
			truth := []float64{
				instr,
				cycles,
				rng.Float64() * instr / 50,
				icache,
				rng.Float64() * icache,
				rng.Float64() * instr / 10,
			}

			// Noise-free inputs: nothing to flag, nothing to move beyond
			// tolerance.
			exact := make([]float64, len(truth))
			res, err := Solve(events, truth, exact, model)
			if err != nil {
				t.Fatalf("%s trial %d exact: %v", proc.Tag, trial, err)
			}
			for _, r := range res.Residuals {
				if r.Violated {
					t.Fatalf("%s trial %d: consistent truth flagged: %+v (truth %v)", proc.Tag, trial, r, truth)
				}
			}

			// Noisy inputs: never-widen and posterior feasibility.
			means := make([]float64, len(truth))
			vars := make([]float64, len(truth))
			for i := range truth {
				sd := 1 + math.Sqrt(truth[i])*rng.Float64()
				vars[i] = sd * sd
				means[i] = truth[i] + sd*rng.NormFloat64()
			}
			res, err = Solve(events, means, vars, model)
			if err != nil {
				t.Fatalf("%s trial %d noisy: %v", proc.Tag, trial, err)
			}
			for i := range events {
				if res.Variance[i] > vars[i] {
					t.Fatalf("%s trial %d: %s widened (%v > %v)",
						proc.Tag, trial, events[i], res.Variance[i], vars[i])
				}
			}
			checkFeasible(t, proc, res)
		}
	}
}

// checkFeasible asserts the posterior means satisfy the library's
// inequalities to solver tolerance.
func checkFeasible(t *testing.T, proc *cpu.Model, res *Result) {
	t.Helper()
	at := func(ev string) float64 {
		for i, name := range res.Events {
			if name == ev {
				return res.Mean[i]
			}
		}
		t.Fatalf("event %s missing from result", ev)
		return 0
	}
	tol := 1e-6 * (1 + at("CPU_CLK_UNHALTED"))
	if at("INSTR_RETIRED") > float64(proc.RetireWidth)*at("CPU_CLK_UNHALTED")+tol {
		t.Fatalf("posterior breaks superscalar-width: instr %v cycles %v", at("INSTR_RETIRED"), at("CPU_CLK_UNHALTED"))
	}
	for _, pair := range [][2]string{
		{"BR_MISP_RETIRED", "INSTR_RETIRED"},
		{"ICACHE_MISS", "INSTR_RETIRED"},
		{"ITLB_MISS", "ICACHE_MISS"},
		{"DCACHE_MISS", "INSTR_RETIRED"},
	} {
		if at(pair[0]) > at(pair[1])+tol {
			t.Fatalf("posterior breaks %s <= %s: %v > %v", pair[0], pair[1], at(pair[0]), at(pair[1]))
		}
	}
	for _, ev := range res.Events {
		if at(ev) < -tol {
			t.Fatalf("posterior negative count for %s: %v", ev, at(ev))
		}
	}
}
