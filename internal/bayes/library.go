package bayes

import (
	"repro/internal/cpu"
)

// Library returns the built-in invariant model for the simulated ISA's
// event set on one processor model. Every invariant holds structurally
// in the simulator (and mirrors a real-hardware validation rule from
// the event-validation literature), so on consistent measurements the
// residuals stay small and the posterior only tightens:
//
//   - superscalar-width: INSTR_RETIRED <= width * CPU_CLK_UNHALTED.
//     The core retires at most RetireWidth instructions per cycle (the
//     *peak* rate — tight inner loops beat the sustained BaseIPC, so
//     the bound must use the micro-architectural width), and penalties
//     only add cycles, so the cycle count bounds the instruction count
//     from below. This is the paper-family invariant
//     CYCLES >= INST/width.
//   - misp-le-instr: BR_MISP_RETIRED <= INSTR_RETIRED. Mispredicted
//     branches are retired instructions.
//   - icache-le-instr: ICACHE_MISS <= INSTR_RETIRED. The simulator
//     charges at most one i-cache miss per instruction fetch (first
//     touch of a line).
//   - itlb-le-icache: ITLB_MISS <= ICACHE_MISS. An i-TLB miss fires on
//     first touch of a page, and the first touch of a page is also the
//     first touch of its leading cache line, so pages never outnumber
//     touched lines.
//   - dcache-le-instr: DCACHE_MISS <= INSTR_RETIRED. Data misses come
//     from memory instructions (one miss per line of sequential
//     8-byte accesses — at most one per retired memory op).
//   - <event>-nonneg: every count is non-negative. Trivial on ground
//     truth, not on estimates: a noisy near-zero measurement (or an
//     aggressive overhead correction) can land below zero, and the
//     projection pulls it back with a variance cut.
//
// The model is written over the full event vocabulary; callers
// restrict it to the events actually measured (Model.Restrict), which
// every solve path does automatically.
func Library(model *cpu.Model) Model {
	instr := cpu.EventInstrRetired.String()
	cycles := cpu.EventCoreCycles.String()
	misp := cpu.EventBrMispRetired.String()
	icache := cpu.EventICacheMiss.String()
	itlb := cpu.EventITLBMiss.String()
	dcache := cpu.EventDCacheMiss.String()

	m := Model{Constraints: []Constraint{
		{
			Name: "superscalar-width",
			Terms: []Term{
				{Event: instr, Coef: 1},
				{Event: cycles, Coef: -float64(model.RetireWidth)},
			},
			Op: OpLe, RHS: 0,
		},
		{
			Name:  "misp-le-instr",
			Terms: []Term{{Event: misp, Coef: 1}, {Event: instr, Coef: -1}},
			Op:    OpLe, RHS: 0,
		},
		{
			Name:  "icache-le-instr",
			Terms: []Term{{Event: icache, Coef: 1}, {Event: instr, Coef: -1}},
			Op:    OpLe, RHS: 0,
		},
		{
			Name:  "itlb-le-icache",
			Terms: []Term{{Event: itlb, Coef: 1}, {Event: icache, Coef: -1}},
			Op:    OpLe, RHS: 0,
		},
		{
			Name:  "dcache-le-instr",
			Terms: []Term{{Event: dcache, Coef: 1}, {Event: instr, Coef: -1}},
			Op:    OpLe, RHS: 0,
		},
	}}
	for _, ev := range cpu.Events(model.Arch) {
		m.Constraints = append(m.Constraints, Constraint{
			Name:  ev.String() + "-nonneg",
			Terms: []Term{{Event: ev.String(), Coef: -1}},
			Op:    OpLe, RHS: 0,
		})
	}
	return m
}
