package bayes

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cpu"
)

func TestConstraintCanonical(t *testing.T) {
	c := Constraint{
		Terms: []Term{
			{Event: "B", Coef: 2},
			{Event: "A", Coef: 1},
			{Event: "B", Coef: -2}, // cancels to zero: dropped
			{Event: "C", Coef: -3},
		},
		Op:  OpGe,
		RHS: 5,
	}
	got, err := c.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if got.Op != OpLe || got.RHS != -5 {
		t.Errorf("Ge not rewritten: op %q rhs %v", got.Op, got.RHS)
	}
	want := []Term{{Event: "A", Coef: -1}, {Event: "C", Coef: 3}}
	if len(got.Terms) != len(want) {
		t.Fatalf("terms = %v, want %v", got.Terms, want)
	}
	for i, tm := range want {
		if got.Terms[i] != tm {
			t.Errorf("term %d = %v, want %v", i, got.Terms[i], tm)
		}
	}
	if got.Name == "" {
		t.Error("canonical form should derive a name")
	}

	// Canonicalization is idempotent — the property request keys rely on.
	again, err := got.Canonical()
	if err != nil {
		t.Fatalf("re-Canonical: %v", err)
	}
	if again.Name != got.Name || again.Op != got.Op || again.RHS != got.RHS {
		t.Errorf("not idempotent: %+v vs %+v", again, got)
	}
}

func TestConstraintCanonicalErrors(t *testing.T) {
	cases := []Constraint{
		{Terms: []Term{{Event: "A", Coef: 1}}, Op: "<", RHS: 0},
		{Terms: nil, Op: OpEq, RHS: 0},
		{Terms: []Term{{Event: "A", Coef: 1}, {Event: "A", Coef: -1}}, Op: OpEq, RHS: 0},
		{Terms: []Term{{Event: "", Coef: 1}}, Op: OpEq, RHS: 0},
		{Terms: []Term{{Event: "A", Coef: math.NaN()}}, Op: OpEq, RHS: 0},
		{Terms: []Term{{Event: "A", Coef: 1}}, Op: OpEq, RHS: math.Inf(1)},
	}
	for i, c := range cases {
		if _, err := c.Canonical(); !errors.Is(err, ErrBadConstraint) {
			t.Errorf("case %d: got %v, want ErrBadConstraint", i, err)
		}
	}
}

func TestModelRestrict(t *testing.T) {
	m := Library(cpu.Athlon64X2)
	r := m.Restrict([]string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"})
	for _, c := range r.Constraints {
		for _, tm := range c.Terms {
			if tm.Event != "INSTR_RETIRED" && tm.Event != "CPU_CLK_UNHALTED" {
				t.Errorf("restricted model leaks event %s (constraint %s)", tm.Event, c)
			}
		}
	}
	// superscalar-width plus the two nonnegativity rows survive.
	if len(r.Constraints) != 3 {
		t.Errorf("restricted to %d constraints, want 3: %v", len(r.Constraints), r.Constraints)
	}
}

func TestSolveEqualityClosedForm(t *testing.T) {
	// Two noisy measurements constrained equal must fuse to the
	// inverse-variance mean with the harmonic variance — the textbook
	// conditional Gaussian.
	m1, v1 := 100.0, 4.0
	m2, v2 := 110.0, 6.0
	res, err := Solve(
		[]string{"X", "Y"},
		[]float64{m1, m2},
		[]float64{v1, v2},
		Model{Constraints: []Constraint{{
			Terms: []Term{{Event: "X", Coef: 1}, {Event: "Y", Coef: -1}},
			Op:    OpEq, RHS: 0,
		}}},
	)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	wantMean := (m1/v1 + m2/v2) / (1/v1 + 1/v2)
	wantVar := 1 / (1/v1 + 1/v2)
	for i := range res.Events {
		if math.Abs(res.Mean[i]-wantMean) > 1e-10 {
			t.Errorf("mean[%d] = %v, want %v", i, res.Mean[i], wantMean)
		}
		if math.Abs(res.Variance[i]-wantVar) > 1e-10 {
			t.Errorf("var[%d] = %v, want %v", i, res.Variance[i], wantVar)
		}
	}
	// Fully correlated after conditioning: covariance equals variance.
	if math.Abs(res.Cov.At(0, 1)-wantVar) > 1e-10 {
		t.Errorf("cov = %v, want %v", res.Cov.At(0, 1), wantVar)
	}
	if len(res.Active) != 1 {
		t.Errorf("active = %v, want the single equality", res.Active)
	}
}

func TestSolveSumDecomposition(t *testing.T) {
	// TOTAL = A + B, the BayesPerf-style decomposition. The posterior
	// must satisfy the constraint exactly and tighten every marginal.
	events := []string{"TOTAL", "A", "B"}
	means := []float64{1480, 1010, 505}
	vars := []float64{900, 400, 625}
	res, err := Solve(events, means, vars, Model{Constraints: []Constraint{{
		Name: "decompose",
		Terms: []Term{
			{Event: "TOTAL", Coef: 1}, {Event: "A", Coef: -1}, {Event: "B", Coef: -1},
		},
		Op: OpEq, RHS: 0,
	}}})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := res.Mean[0] - res.Mean[1] - res.Mean[2]; math.Abs(got) > 1e-8 {
		t.Errorf("posterior violates the constraint by %v", got)
	}
	for i := range events {
		if res.Variance[i] >= vars[i] {
			t.Errorf("%s: posterior variance %v not below prior %v", events[i], res.Variance[i], vars[i])
		}
	}
}

func TestSolveInequalityProjection(t *testing.T) {
	// An estimate violating X <= Y projects onto the boundary; a
	// consistent one is untouched.
	model := Model{Constraints: []Constraint{{
		Name:  "x-le-y",
		Terms: []Term{{Event: "X", Coef: 1}, {Event: "Y", Coef: -1}},
		Op:    OpLe, RHS: 0,
	}}}

	res, err := Solve([]string{"X", "Y"}, []float64{10, 4}, []float64{1, 1}, model)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Mean[0]-res.Mean[1] > 1e-9 {
		t.Errorf("posterior still violates: X=%v Y=%v", res.Mean[0], res.Mean[1])
	}
	if math.Abs(res.Mean[0]-7) > 1e-9 || math.Abs(res.Mean[1]-7) > 1e-9 {
		t.Errorf("projection landed at (%v, %v), want (7, 7)", res.Mean[0], res.Mean[1])
	}
	if res.Variance[0] >= 1 || res.Variance[1] >= 1 {
		t.Errorf("active inequality must tighten: vars %v", res.Variance)
	}
	if len(res.Residuals) != 1 || !res.Residuals[0].Violated {
		t.Errorf("residual should flag the violation: %+v", res.Residuals)
	}

	res2, err := Solve([]string{"X", "Y"}, []float64{4, 10}, []float64{1, 1}, model)
	if err != nil {
		t.Fatalf("Solve consistent: %v", err)
	}
	if res2.Mean[0] != 4 || res2.Mean[1] != 10 || res2.Variance[0] != 1 || res2.Variance[1] != 1 {
		t.Errorf("inactive inequality must not touch the inputs: %+v", res2)
	}
	if len(res2.Active) != 0 {
		t.Errorf("active = %v, want none", res2.Active)
	}
	if res2.Residuals[0].Violated {
		t.Error("consistent inputs flagged violated")
	}
}

func TestSolveExactObservation(t *testing.T) {
	// Zero variance marks an exact value: an equality against it pins
	// the noisy event to it.
	res, err := Solve(
		[]string{"X", "Y"},
		[]float64{1000, 970},
		[]float64{0, 100},
		Model{Constraints: []Constraint{{
			Terms: []Term{{Event: "X", Coef: 1}, {Event: "Y", Coef: -1}},
			Op:    OpEq, RHS: 0,
		}}},
	)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Mean[0] != 1000 || res.Variance[0] != 0 {
		t.Errorf("exact event moved: %v ± %v", res.Mean[0], res.Variance[0])
	}
	if math.Abs(res.Mean[1]-1000) > 1e-9 || res.Variance[1] > 1e-9 {
		t.Errorf("Y should be pinned to 1000 exactly, got %v ± %v", res.Mean[1], res.Variance[1])
	}
}

func TestSolveDependentEqualities(t *testing.T) {
	model := Model{Constraints: []Constraint{
		{Terms: []Term{{Event: "X", Coef: 1}, {Event: "Y", Coef: -1}}, Op: OpEq, RHS: 0},
		{Terms: []Term{{Event: "X", Coef: 2}, {Event: "Y", Coef: -2}}, Op: OpEq, RHS: 0},
	}}
	if _, err := Solve([]string{"X", "Y"}, []float64{1, 2}, []float64{1, 1}, model); !errors.Is(err, ErrDependent) {
		t.Fatalf("got %v, want ErrDependent", err)
	}
}

func TestSolveUnknownEventAndBadInput(t *testing.T) {
	model := Model{Constraints: []Constraint{{
		Terms: []Term{{Event: "Z", Coef: 1}}, Op: OpLe, RHS: 0,
	}}}
	if _, err := Solve([]string{"X"}, []float64{1}, []float64{1}, model); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("got %v, want ErrUnknownEvent", err)
	}
	if _, err := Solve([]string{"X"}, []float64{math.NaN()}, []float64{1}, Model{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN mean: got %v, want ErrBadInput", err)
	}
	if _, err := Solve([]string{"X"}, []float64{1}, []float64{-1}, Model{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative variance: got %v, want ErrBadInput", err)
	}
	if _, err := Solve([]string{"X", "X"}, []float64{1, 1}, []float64{1, 1}, Model{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("duplicate event: got %v, want ErrBadInput", err)
	}
}

func TestResidualFlagsInvariantViolation(t *testing.T) {
	// ITLB misses wildly exceeding i-cache misses: the invariant's
	// residual must flag it even though projection would "fix" it.
	model := Library(cpu.Athlon64X2).Restrict([]string{"ITLB_MISS", "ICACHE_MISS"})
	res, err := Solve(
		[]string{"ITLB_MISS", "ICACHE_MISS"},
		[]float64{500, 20},
		[]float64{25, 25},
		model,
	)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	found := false
	for _, r := range res.Residuals {
		if r.Constraint == "itlb-le-icache" {
			found = true
			if !r.Violated {
				t.Errorf("itlb-le-icache not flagged: %+v", r)
			}
			if r.Sigma < ViolationSigma {
				t.Errorf("sigma %v below threshold yet expected gross violation", r.Sigma)
			}
		}
	}
	if !found {
		t.Fatal("itlb-le-icache residual missing")
	}
}

func TestLibraryCoversEventVocabulary(t *testing.T) {
	for _, model := range cpu.AllModels {
		lib := Library(model)
		if _, err := lib.Canonical(); err != nil {
			t.Fatalf("%s: library not canonicalizable: %v", model.Tag, err)
		}
		evs := lib.Events()
		for _, ev := range cpu.Events(model.Arch) {
			present := false
			for _, name := range evs {
				if name == ev.String() {
					present = true
				}
			}
			if !present {
				t.Errorf("%s: event %s has no invariant", model.Tag, ev)
			}
		}
	}
}
