// Package vcounter implements per-thread ("virtualized") performance
// counters, the service both perfctr and perfmon2 provide on top of the
// raw hardware registers (Section 2.3 of the paper).
//
// Hardware counters count whatever runs on the core. To report per-thread
// counts, the kernel extension saves the hardware counters into the
// outgoing thread's accumulator at every context switch and zeroes them
// for the incoming thread; a thread's logical count is then
// accumulator + current hardware value.
package vcounter

import (
	"fmt"

	"repro/internal/cpu"
)

// Set virtualizes the first n programmable counters of a PMU across
// threads. It implements kernel.SwitchHook.
type Set struct {
	pmu     *cpu.PMU
	n       int
	current int
	accum   map[int][]int64
}

// New returns a virtual counter set over counters 0..n-1 of pmu, with
// thread initial as the running thread.
func New(pmu *cpu.PMU, n, initial int) *Set {
	s := &Set{pmu: pmu, n: n, current: initial, accum: make(map[int][]int64)}
	s.accum[initial] = make([]int64, n)
	return s
}

// N returns the number of virtualized counters.
func (s *Set) N() int { return s.n }

// Current returns the thread whose counts are live in hardware.
func (s *Set) Current() int { return s.current }

// ensure returns the accumulator slice for tid, creating it on first use.
func (s *Set) ensure(tid int) []int64 {
	a, ok := s.accum[tid]
	if !ok {
		a = make([]int64, s.n)
		s.accum[tid] = a
	}
	return a
}

// Read returns the current thread's virtual value of counter ctr:
// its saved accumulator plus the live hardware count.
func (s *Set) Read(ctr int) int64 {
	if ctr < 0 || ctr >= s.n {
		return 0
	}
	hw, err := s.pmu.Value(ctr)
	if err != nil {
		return 0
	}
	return s.ensure(s.current)[ctr] + hw
}

// ReadThread returns the virtual value of counter ctr for an arbitrary
// thread; for non-current threads this is just the saved accumulator.
func (s *Set) ReadThread(tid, ctr int) (int64, error) {
	if ctr < 0 || ctr >= s.n {
		return 0, fmt.Errorf("vcounter: counter %d out of range [0,%d)", ctr, s.n)
	}
	if tid == s.current {
		return s.Read(ctr), nil
	}
	return s.ensure(tid)[ctr], nil
}

// ResetAccum zeroes the current thread's accumulators for the counters
// in mask, mirroring a hardware counter reset into the virtual state.
func (s *Set) ResetAccum(mask uint64) {
	a := s.ensure(s.current)
	for i := 0; i < s.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			a[i] = 0
		}
	}
}

// Save folds the live hardware counts into tid's accumulator and zeroes
// the hardware registers (the switch-out half of a context switch).
func (s *Set) Save(tid int) {
	a := s.ensure(tid)
	for i := 0; i < s.n; i++ {
		hw, err := s.pmu.Value(i)
		if err != nil {
			continue
		}
		a[i] += hw
		// Ignore error: i is in range by construction.
		_ = s.pmu.SetValue(i, 0)
	}
}

// Restore makes tid the current thread. Hardware counters restart from
// zero; tid's past counts live in its accumulator (the switch-in half).
func (s *Set) Restore(tid int) {
	s.ensure(tid)
	s.current = tid
	for i := 0; i < s.n; i++ {
		_ = s.pmu.SetValue(i, 0)
	}
}
