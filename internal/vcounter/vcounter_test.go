package vcounter

import (
	"testing"

	"repro/internal/cpu"
)

func newPMU(t *testing.T, n int) *cpu.PMU {
	t.Helper()
	p := cpu.NewPMU(cpu.Athlon64X2)
	for i := 0; i < n; i++ {
		if err := p.Configure(i, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: true, OS: true}); err != nil {
			t.Fatal(err)
		}
	}
	p.Enable((1 << uint(n)) - 1)
	return p
}

func TestReadReflectsHardware(t *testing.T) {
	pmu := newPMU(t, 2)
	s := New(pmu, 2, 1)
	pmu.AddInstr(cpu.User, 50)
	if got := s.Read(0); got != 50 {
		t.Errorf("Read(0) = %d, want 50", got)
	}
	if got := s.Read(5); got != 0 {
		t.Errorf("out-of-range read = %d, want 0", got)
	}
	if s.N() != 2 || s.Current() != 1 {
		t.Error("N/Current wrong")
	}
}

// TestPerThreadIsolation is the core virtualization property (Section
// 2.3): a thread's counts must not include events from other threads.
func TestPerThreadIsolation(t *testing.T) {
	pmu := newPMU(t, 1)
	s := New(pmu, 1, 1)

	pmu.AddInstr(cpu.User, 100) // thread 1 work
	s.Save(1)
	s.Restore(2)
	pmu.AddInstr(cpu.User, 999) // thread 2 work

	v2, err := s.ReadThread(2, 0)
	if err != nil || v2 != 999 {
		t.Errorf("thread 2 count = %d, %v; want 999", v2, err)
	}
	v1, err := s.ReadThread(1, 0)
	if err != nil || v1 != 100 {
		t.Errorf("thread 1 count = %d, %v; want 100 (isolated)", v1, err)
	}

	// Switch back: thread 1 resumes accumulating.
	s.Save(2)
	s.Restore(1)
	pmu.AddInstr(cpu.User, 11)
	if got := s.Read(0); got != 111 {
		t.Errorf("thread 1 resumed count = %d, want 111", got)
	}
	v2, _ = s.ReadThread(2, 0)
	if v2 != 999 {
		t.Errorf("thread 2 count perturbed to %d", v2)
	}
}

func TestResetAccum(t *testing.T) {
	pmu := newPMU(t, 2)
	s := New(pmu, 2, 1)
	pmu.AddInstr(cpu.User, 10)
	s.Save(1) // accum = 10, hw = 0
	s.Restore(1)
	pmu.AddInstr(cpu.User, 5)
	if got := s.Read(0); got != 15 {
		t.Fatalf("virtual = %d, want 15", got)
	}
	pmu.Reset(0b01)
	s.ResetAccum(0b01)
	if got := s.Read(0); got != 0 {
		t.Errorf("after reset, counter 0 = %d, want 0", got)
	}
	if got := s.Read(1); got != 15 {
		t.Errorf("counter 1 should be untouched, got %d", got)
	}
}

func TestReadThreadErrors(t *testing.T) {
	pmu := newPMU(t, 1)
	s := New(pmu, 1, 1)
	if _, err := s.ReadThread(1, 9); err == nil {
		t.Error("out-of-range counter accepted")
	}
	// Unknown thread: lazily created with zero counts.
	v, err := s.ReadThread(42, 0)
	if err != nil || v != 0 {
		t.Errorf("fresh thread = %d, %v", v, err)
	}
}
