// Package stack assembles complete measurement systems: a simulated
// processor, a kernel with a counter extension, and one of the six
// counter-access infrastructures of Figure 2.
package stack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/papi"
	"repro/internal/perfctr"
	"repro/internal/perfmon"
)

// Codes lists the six stacks in the paper's Figure 6 presentation order.
var Codes = []string{"PHpm", "PHpc", "PLpm", "PLpc", "pm", "pc"}

// DirectCodes lists the two direct (non-PAPI) stacks.
var DirectCodes = []string{"pm", "pc"}

// System is a bootable measurement system.
type System struct {
	// Kernel is the booted kernel (Core reachable through it).
	Kernel *kernel.Kernel
	// Infra is the counter-access stack under test.
	Infra core.Infrastructure
	// Code is the stack code the system was built from.
	Code string
	// TSC reports whether the perfctr TSC fast-read path is enabled
	// (meaningless for perfmon-backed stacks).
	TSC bool
	// Engine is the execution engine measurements run on when the
	// request does not pin one; nil selects the process default.
	Engine cpu.Runner
}

// Options configure system construction.
type Options struct {
	// WithTSC enables the TSC in perfctr counter selections. The
	// paper's guideline configuration (and every experiment except the
	// Figure 4 TSC study) keeps it on.
	WithTSC bool
	// Governor selects the frequency policy; the study pins
	// "performance" (Section 3.2).
	Governor kernel.Governor
	// Engine is the execution engine for this system's measurements
	// (nil: the process default, the compiled engine). Engines are
	// conformance-tested to be byte-identical, so the choice affects
	// throughput only.
	Engine cpu.Runner
}

// DefaultOptions is the study's configuration.
var DefaultOptions = Options{WithTSC: true, Governor: kernel.Performance}

// New boots a measurement system for the given processor and stack code
// (pm, pc, PLpm, PLpc, PHpm, PHpc).
func New(model *cpu.Model, code string, opts Options) (*System, error) {
	k := kernel.New(model)
	k.SetGovernor(opts.Governor)

	var backend core.Infrastructure
	var err error
	switch backendOf(code) {
	case "pc":
		backend, err = perfctr.New(k, opts.WithTSC)
	case "pm":
		backend, err = perfmon.New(k)
	default:
		return nil, fmt.Errorf("stack: unknown stack code %q", code)
	}
	if err != nil {
		return nil, err
	}

	infra := backend
	switch levelOf(code) {
	case "PL":
		infra = papi.New(backend, papi.Low)
	case "PH":
		infra = papi.New(backend, papi.High)
	}
	return &System{Kernel: k, Infra: infra, Code: code, TSC: opts.WithTSC, Engine: opts.Engine}, nil
}

// backendOf extracts the substrate code ("pm" or "pc").
func backendOf(code string) string {
	if len(code) >= 2 {
		return code[len(code)-2:]
	}
	return code
}

// levelOf extracts the PAPI level prefix ("", "PL", or "PH").
func levelOf(code string) string {
	if len(code) == 4 {
		return code[:2]
	}
	return ""
}

// Reset returns the system to its just-booted state. A reset system
// produces byte-identical measurements to a freshly constructed one for
// the same request, which is what allows worker pools to reuse systems
// across requests without execution history leaking between them.
func (s *System) Reset() {
	s.Kernel.ResetState()
}

// Measure runs one measurement on this system. Requests that do not
// pin an engine run on the system's engine.
func (s *System) Measure(req core.Request) (*core.Measurement, error) {
	if req.Runner == nil {
		req.Runner = s.Engine
	}
	return core.Measure(s.Kernel, s.Infra, req)
}

// MeasureN runs n repetitions and returns counter 0's per-run error.
func (s *System) MeasureN(req core.Request, n int, seedBase uint64) ([]int64, error) {
	if req.Runner == nil {
		req.Runner = s.Engine
	}
	return core.MeasureN(s.Kernel, s.Infra, req, n, seedBase)
}
