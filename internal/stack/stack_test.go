package stack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernel"
)

func TestNewAllCodes(t *testing.T) {
	for _, m := range cpu.AllModels {
		for _, code := range Codes {
			s, err := New(m, code, DefaultOptions)
			if err != nil {
				t.Errorf("%s/%s: %v", m.Tag, code, err)
				continue
			}
			if s.Infra.Name() != code {
				t.Errorf("%s: infra name %q", code, s.Infra.Name())
			}
			if s.Kernel.Model() != m {
				t.Error("kernel bound to wrong model")
			}
		}
	}
}

func TestNewUnknownCode(t *testing.T) {
	if _, err := New(cpu.Athlon64X2, "zz", DefaultOptions); err == nil {
		t.Error("unknown code accepted")
	}
	if _, err := New(cpu.Athlon64X2, "x", DefaultOptions); err == nil {
		t.Error("short code accepted")
	}
}

func TestBackendParsing(t *testing.T) {
	for code, want := range map[string]string{
		"pm": "pm", "pc": "pc",
		"PLpm": "pm", "PLpc": "pc",
		"PHpm": "pm", "PHpc": "pc",
	} {
		s, err := New(cpu.Core2Duo, code, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if s.Infra.Backend() != want {
			t.Errorf("%s: backend %q, want %q", code, s.Infra.Backend(), want)
		}
	}
}

func TestGovernorOption(t *testing.T) {
	s, err := New(cpu.PentiumD, "pm", Options{WithTSC: true, Governor: kernel.Powersave})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kernel.Governor() != kernel.Powersave {
		t.Error("governor option not applied")
	}
}

func TestSystemMeasure(t *testing.T) {
	s, err := New(cpu.Athlon64X2, "PLpm", DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Measure(core.Request{Bench: core.LoopBenchmark(1000), Pattern: core.StartRead, Mode: core.ModeUser, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Deltas[0] < m.Expected {
		t.Errorf("measured %d below ground truth %d", m.Deltas[0], m.Expected)
	}
}
