package accuracy

import (
	"math"
	"testing"

	"repro/internal/mpx"
)

func TestFromRunsCorrectsOverhead(t *testing.T) {
	counts := []float64{1085, 1084, 1086, 1084, 1085}
	est, err := FromRuns(counts, 84, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Raw-1084.8) > 1e-9 {
		t.Errorf("Raw = %v, want 1084.8", est.Raw)
	}
	if math.Abs(est.Corrected-1000.8) > 1e-9 {
		t.Errorf("Corrected = %v, want 1000.8", est.Corrected)
	}
	if !est.CI.Contains(est.Corrected) {
		t.Errorf("CI %+v does not contain its own point %v", est.CI, est.Corrected)
	}
	if len(est.Terms) != 1 || est.Terms[0].Name != TermOverhead || est.Terms[0].Value != 84 {
		t.Errorf("Terms = %+v, want one overhead=84 term", est.Terms)
	}
	if est.N != 5 {
		t.Errorf("N = %d, want 5", est.N)
	}
}

func TestFromRunsSingleRunCollapses(t *testing.T) {
	est, err := FromRuns([]float64{500}, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.CI.Lo != 500 || est.CI.Hi != 500 || est.StdErr != 0 {
		t.Errorf("single run: CI = %+v, StdErr = %v; want point interval", est.CI, est.StdErr)
	}
	if len(est.Terms) != 0 {
		t.Errorf("zero overhead must not emit a term, got %+v", est.Terms)
	}
}

func TestFromRunsValidation(t *testing.T) {
	if _, err := FromRuns(nil, 0, 0.95); err == nil {
		t.Error("empty sample accepted")
	}
	for _, conf := range []float64{0, 1, -0.5, 1.5} {
		if _, err := FromRuns([]float64{1}, 0, conf); err == nil {
			t.Errorf("confidence %v accepted", conf)
		}
	}
}

func TestConfidenceWidensInterval(t *testing.T) {
	counts := []float64{10, 12, 11, 13, 9, 11, 12, 10}
	lo, err := FromRuns(counts, 0, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := FromRuns(counts, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if hi.CI.Width() <= lo.CI.Width() {
		t.Errorf("99%% interval (%v) not wider than 80%% (%v)", hi.CI.Width(), lo.CI.Width())
	}
}

func TestMultiplexFullObservationIsTight(t *testing.T) {
	// ActiveFraction 1 means nothing was extrapolated: the term must be
	// ~0 and the model SE reduces to plain Poisson sqrt(obs).
	runs := []mpx.Estimate{{Observed: 10000, ActiveFraction: 1, Value: 10000}}
	est, err := Multiplex(runs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Corrected != 10000 {
		t.Errorf("Corrected = %v, want 10000", est.Corrected)
	}
	if est.Terms[0].Value != 0 {
		t.Errorf("extrapolation term = %v, want 0", est.Terms[0].Value)
	}
	if want := math.Sqrt(10000); math.Abs(est.StdErr-want) > 1e-9 {
		t.Errorf("StdErr = %v, want %v", est.StdErr, want)
	}
}

func TestMultiplexSmallerFractionWiderInterval(t *testing.T) {
	// Same estimated total, observed over shrinking fractions: the
	// interval must widen as the observed share shrinks.
	mk := func(f float64) []mpx.Estimate {
		obs := 100000 * f
		return []mpx.Estimate{{Observed: int64(obs), ActiveFraction: f, Value: obs / f}}
	}
	prev := -1.0
	for _, f := range []float64{1, 0.5, 0.25, 0.125} {
		est, err := Multiplex(mk(f), 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.CI.Width() <= prev {
			t.Errorf("fraction %v: width %v not wider than %v", f, est.CI.Width(), prev)
		}
		prev = est.CI.Width()
	}
}

func TestMultiplexExtrapolationTerm(t *testing.T) {
	runs := []mpx.Estimate{{Observed: 5000, ActiveFraction: 0.5, Value: 10000}}
	est, err := Multiplex(runs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// The term records the inferred portion's magnitude without
	// shifting the point estimate.
	if est.Terms[0].Name != TermMpxExtrapolation || est.Terms[0].Value != 5000 {
		t.Errorf("Terms = %+v, want mpx-extrapolation=5000", est.Terms)
	}
	if est.Corrected != est.Raw {
		t.Errorf("uncertainty term shifted the estimate: Raw %v, Corrected %v", est.Raw, est.Corrected)
	}
}

func TestSamplingBracket(t *testing.T) {
	est, err := Sampling(42, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Raw != 42000 || est.Corrected != 42500 {
		t.Errorf("Raw/Corrected = %v/%v, want 42000/42500", est.Raw, est.Corrected)
	}
	if est.CI.Lo != 42000 || est.CI.Hi != 43000 {
		t.Errorf("CI = %+v, want [42000, 43000]", est.CI)
	}
	if _, err := Sampling(1, 0, 0.95); err == nil {
		t.Error("zero period accepted")
	}
}

func TestDuetBasic(t *testing.T) {
	a := []float64{105, 106, 104, 105}
	b := []float64{100, 101, 99, 100}
	res, err := Duet(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != 5 {
		t.Errorf("Mean = %v, want 5", res.Mean)
	}
	// These vectors move in lockstep: the pairing removes all variance.
	if res.VarPaired != 0 {
		t.Errorf("VarPaired = %v, want 0", res.VarPaired)
	}
	if res.Cancellation != 1 {
		t.Errorf("Cancellation = %v, want 1", res.Cancellation)
	}
	if !res.CI.Contains(5) {
		t.Errorf("CI %+v excludes the mean", res.CI)
	}
}

func TestDuetValidation(t *testing.T) {
	if _, err := Duet(nil, nil, 0.95); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := Duet([]float64{1, 2}, []float64{1}, 0.95); err == nil {
		t.Error("mismatched lengths accepted")
	}
}
