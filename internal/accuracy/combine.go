package accuracy

import (
	"math"

	"repro/internal/stats"
)

// Combine fuses independent estimates of one quantity by
// inverse-variance weighting (stats.InverseVarianceMean): the
// minimum-variance linear combination, so the fused interval is never
// wider than the tightest input interval. This is the fusion step the
// planning layer applies when the same event has been observed through
// several schedules — per-group anchor copies, dedicated reference
// runs — and the BayesPerf-style linear event constraint reduces to
// "all of these estimate the same count".
//
// Estimates with zero standard error are exact observations and
// dominate the combination (see stats.InverseVarianceMean). The fused
// N sums the observation counts; correction terms are not carried
// over, since they describe the individual measurement procedures, not
// the fused quantity.
func Combine(ests []Estimate, confidence float64) (Estimate, error) {
	if len(ests) == 0 {
		return Estimate{}, ErrNoObservations
	}
	z, err := zFor(confidence)
	if err != nil {
		return Estimate{}, err
	}
	points := make([]float64, len(ests))
	raws := make([]float64, len(ests))
	variances := make([]float64, len(ests))
	n := 0
	for i, e := range ests {
		points[i] = e.Corrected
		raws[i] = e.Raw
		variances[i] = e.StdErr * e.StdErr
		n += e.N
	}
	point, v, err := stats.InverseVarianceMean(points, variances)
	if err != nil {
		return Estimate{}, err
	}
	raw, _, err := stats.InverseVarianceMean(raws, variances)
	if err != nil {
		return Estimate{}, err
	}
	se := math.Sqrt(v)
	return Estimate{
		Raw:        raw,
		Corrected:  point,
		CI:         Interval{Lo: point - z*se, Hi: point + z*se},
		Confidence: confidence,
		StdErr:     se,
		N:          n,
	}, nil
}
