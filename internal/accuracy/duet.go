package accuracy

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// ErrPairMismatch reports duet samples of different lengths.
var ErrPairMismatch = errors.New("accuracy: duet samples must pair one-to-one")

// DuetResult is the paired analysis of two interleaved measurement
// configurations A and B: the distribution of per-pair deltas A_i -
// B_i, its confidence interval, and how much variance the pairing
// removed relative to differencing independent runs.
type DuetResult struct {
	// Deltas is the per-pair difference A_i - B_i.
	Deltas []float64 `json:"deltas"`
	// Mean is the average delta — the duet estimate of A - B.
	Mean float64 `json:"mean"`
	// CI bounds Mean at Confidence.
	CI Interval `json:"ci"`
	// Confidence is the two-sided level of CI.
	Confidence float64 `json:"confidence"`
	// VarPaired is the sample variance of the paired deltas.
	VarPaired float64 `json:"varPaired"`
	// VarIndependent is Var(A) + Var(B): the delta variance two
	// independent runs of the same lengths would have produced.
	VarIndependent float64 `json:"varIndependent"`
	// Cancellation is 1 - VarPaired/VarIndependent: the fraction of the
	// independent-run variance the pairing removed. Near 1 when the
	// pairs share most of their noise, near 0 when their noise is
	// unrelated, negative in the pathological anticorrelated case.
	Cancellation float64 `json:"cancellation"`
}

// Duet computes the paired-measurement analysis of two equal-length
// observation vectors, where a[i] and b[i] were measured as an
// interleaved pair and therefore share the interference present at
// that moment (the duet-benchmarking design of Bulej et al.). Shared
// noise appears in both members of a pair and subtracts out of the
// delta; only the unshared component survives into VarPaired.
func Duet(a, b []float64, confidence float64) (DuetResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return DuetResult{}, ErrNoObservations
	}
	if len(a) != len(b) {
		return DuetResult{}, ErrPairMismatch
	}
	z, err := zFor(confidence)
	if err != nil {
		return DuetResult{}, err
	}
	deltas := make([]float64, len(a))
	for i := range a {
		deltas[i] = a[i] - b[i]
	}
	res := DuetResult{
		Deltas:         deltas,
		Mean:           stats.Mean(deltas),
		Confidence:     confidence,
		VarPaired:      stats.Variance(deltas),
		VarIndependent: stats.Variance(a) + stats.Variance(b),
	}
	se := 0.0
	if len(deltas) > 1 {
		se = math.Sqrt(res.VarPaired / float64(len(deltas)))
	}
	res.CI = Interval{Lo: res.Mean - z*se, Hi: res.Mean + z*se}
	if res.VarIndependent > 0 {
		res.Cancellation = 1 - res.VarPaired/res.VarIndependent
	}
	return res, nil
}
