// Package accuracy is the error-model layer of the measurement
// service: it turns raw counter readings into corrected estimates with
// confidence intervals, attributing each correction to a named source
// of systematic error the paper (and the work its Section 9 surveys)
// identifies:
//
//   - measurement overhead: the infrastructure's own instructions
//     inflate every count by a fixed, calibratable offset (Sections 4
//     and 8); the offset comes from the null-benchmark calibration that
//     internal/service caches per configuration.
//   - multiplexing extrapolation: time-sharing counter registers
//     observes each event only a fraction f of the run, and scaling the
//     observed count by 1/f adds statistical error that grows as f
//     shrinks (Mytkowicz et al.; internal/mpx).
//   - sampling quantization: estimating a count as samples x period
//     discards the partial period in flight at the end of the run, a
//     uniform bias of up to one period (Moore; internal/sampling).
//
// The package also implements paired "duet" analysis (after Bulej et
// al.'s duet benchmarking): two configurations measured in interleaved
// pairs share whatever interference is common to the pair, so the
// per-pair delta cancels it and the delta's confidence interval
// tightens relative to differencing two independent runs.
//
// Everything here is pure arithmetic on observations — deterministic,
// free of side effects, and independent of how the observations were
// produced — which is what lets internal/service attach an accuracy
// annotation to every response without perturbing the measurement.
package accuracy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mpx"
	"repro/internal/stats"
)

// DefaultConfidence is the two-sided confidence level used when a
// request does not name one.
const DefaultConfidence = 0.95

// Errors reported by estimate constructors.
var (
	// ErrNoObservations reports an empty sample.
	ErrNoObservations = errors.New("accuracy: no observations")
	// ErrBadConfidence reports a confidence level outside (0, 1).
	ErrBadConfidence = errors.New("accuracy: confidence must be in (0, 1)")
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Term is one named correction applied to (or uncertainty folded into)
// an estimate. For correction terms (TermOverhead,
// TermSamplingQuantization) Value is the amount subtracted from the
// raw point estimate, so Corrected = Raw - sum of correction Values.
// Pure uncertainty terms (TermMpxExtrapolation) shift nothing: Value
// records the positive magnitude of the inferred quantity and the
// uncertainty is already folded into the interval.
type Term struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Correction-term names. Wire responses carry these strings, so they
// are part of the service contract.
const (
	// TermOverhead is the calibrated fixed measurement overhead.
	TermOverhead = "overhead"
	// TermMpxExtrapolation is the count added by scaling a multiplexed
	// observation to full time — an uncertainty term: it records the
	// inferred (never observed) portion without shifting Corrected.
	TermMpxExtrapolation = "mpx-extrapolation"
	// TermSamplingQuantization is the half-period midpoint correction
	// of a sampling estimate (negative Value: the correction adds half
	// a period to the raw samples-times-period estimate).
	TermSamplingQuantization = "sampling-quantization"
	// TermAnchorFusion is the anchor-constraint correction the planning
	// layer's fusion applies to a multiplexed estimate: the portion of
	// the estimate explained by the shared-window error of the anchor
	// event measured alongside it (Value is subtracted from Raw).
	TermAnchorFusion = "anchor-fusion"
	// TermConstraintFusion is the cross-event correction the
	// constraint-graph inference (internal/bayes) applies: the shift
	// from conditioning the joint Gaussian on the event invariants
	// (Value is subtracted from Raw).
	TermConstraintFusion = "constraint-fusion"
)

// Estimate is a corrected measurement estimate with its confidence
// interval and the terms that produced it.
type Estimate struct {
	// Raw is the uncorrected point estimate (the mean of the
	// observations, or the model's direct output).
	Raw float64 `json:"raw"`
	// Corrected is Raw with every correction term applied (pure
	// uncertainty terms shift nothing — see Term).
	Corrected float64 `json:"corrected"`
	// CI bounds Corrected at the stated confidence.
	CI Interval `json:"ci"`
	// Confidence is the two-sided level of CI, e.g. 0.95.
	Confidence float64 `json:"confidence"`
	// StdErr is the standard error the interval was built from.
	StdErr float64 `json:"stdErr"`
	// N is the number of observations behind the estimate.
	N int `json:"n"`
	// Terms names the corrections applied, largest first on the wire.
	Terms []Term `json:"terms,omitempty"`
}

// zFor returns the two-sided normal critical value for a confidence
// level, validating it.
func zFor(confidence float64) (float64, error) {
	if !(confidence > 0 && confidence < 1) {
		return 0, fmt.Errorf("%w (got %v)", ErrBadConfidence, confidence)
	}
	return stats.NormalQuantile(0.5 + confidence/2), nil
}

// FromRuns builds the counting-model estimate from repeated raw counts
// of one event: the mean count minus the calibrated overhead, with a
// normal-theory interval from the run-to-run dispersion. With a single
// run the dispersion is unobservable and the interval collapses to the
// point; callers wanting a defensible interval should request several
// runs (the paper uses dozens).
func FromRuns(counts []float64, overhead float64, confidence float64) (Estimate, error) {
	if len(counts) == 0 {
		return Estimate{}, ErrNoObservations
	}
	z, err := zFor(confidence)
	if err != nil {
		return Estimate{}, err
	}
	mean := stats.Mean(counts)
	se := 0.0
	if len(counts) > 1 {
		se = stats.StdDev(counts) / math.Sqrt(float64(len(counts)))
	}
	est := Estimate{
		Raw:        mean,
		Corrected:  mean - overhead,
		Confidence: confidence,
		StdErr:     se,
		N:          len(counts),
	}
	est.CI = Interval{Lo: est.Corrected - z*se, Hi: est.Corrected + z*se}
	if overhead != 0 {
		est.Terms = append(est.Terms, Term{Name: TermOverhead, Value: overhead})
	}
	return est, nil
}

// Multiplex builds the estimate for one multiplexed event from the
// per-run mpx estimates. The point estimate is the mean of the runs'
// time-interpolated values; the interval folds together two error
// sources, which are independent and therefore add in quadrature:
//
//   - run-to-run dispersion of the interpolated values (phase effects —
//     the nonstationarity bias Mytkowicz et al. quantify shows up here
//     as spread when the workload's phases beat against the rotation),
//   - extrapolation noise: treating the observed events as a Poisson
//     draw over the active fraction f, the estimate obs/f has standard
//     error sqrt(obs)/f, which grows without bound as f shrinks.
//
// The mpx-extrapolation term records the positive magnitude of the
// inferred (never observed) portion of the count: mean value minus
// mean observed. It is a pure uncertainty term — Corrected stays Raw.
func Multiplex(runs []mpx.Estimate, confidence float64) (Estimate, error) {
	if len(runs) == 0 {
		return Estimate{}, ErrNoObservations
	}
	z, err := zFor(confidence)
	if err != nil {
		return Estimate{}, err
	}
	values := make([]float64, len(runs))
	var observed, modelVar float64
	for i, r := range runs {
		values[i] = r.Value
		observed += float64(r.Observed)
		if r.ActiveFraction > 0 {
			// Variance of obs/f under Poisson counting: obs/f².
			v := float64(r.Observed) / (r.ActiveFraction * r.ActiveFraction)
			modelVar += v
		}
	}
	n := float64(len(runs))
	mean := stats.Mean(values)
	meanObserved := observed / n
	dispSE := 0.0
	if len(runs) > 1 {
		dispSE = stats.StdDev(values) / math.Sqrt(n)
	}
	// modelVar summed over runs estimates the variance of the *sum* of
	// the per-run estimates; the mean's model variance is that over n².
	modelSE := math.Sqrt(modelVar) / n
	se := math.Hypot(dispSE, modelSE)
	est := Estimate{
		Raw:        mean,
		Corrected:  mean,
		Confidence: confidence,
		StdErr:     se,
		N:          len(runs),
		Terms: []Term{{
			Name:  TermMpxExtrapolation,
			Value: mean - meanObserved,
		}},
	}
	est.CI = Interval{Lo: mean - z*se, Hi: mean + z*se}
	return est, nil
}

// Sampling builds the sampling-model estimate from an overflow profile:
// samples x period, plus half a period for the partial period in flight
// when the run ended. The residual is uniform on [0, period), so the
// midpoint correction centers it and the interval is the exact
// deterministic bracket [samples*period, (samples+1)*period] — the
// quantization error cannot exceed one period regardless of confidence
// level, which is why the interval here ignores the confidence
// parameter's width and reports the bracket.
func Sampling(samples int, period int64, confidence float64) (Estimate, error) {
	if period <= 0 {
		return Estimate{}, fmt.Errorf("accuracy: sampling period must be positive (got %d)", period)
	}
	if _, err := zFor(confidence); err != nil {
		return Estimate{}, err
	}
	raw := float64(samples) * float64(period)
	half := float64(period) / 2
	return Estimate{
		Raw:        raw,
		Corrected:  raw + half,
		CI:         Interval{Lo: raw, Hi: raw + float64(period)},
		Confidence: confidence,
		// Standard deviation of a uniform residual: period/sqrt(12).
		StdErr: float64(period) / math.Sqrt(12),
		N:      samples,
		Terms:  []Term{{Name: TermSamplingQuantization, Value: -half}},
	}, nil
}
