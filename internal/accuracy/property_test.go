package accuracy

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// TestFromRunsCoverageProperty checks the contract printed on every
// service response: on synthetic workloads with known ground truth, the
// corrected estimate's CI contains the truth at roughly the stated
// confidence. Counts are truth + overhead + noise; the estimator only
// sees the counts and the overhead.
func TestFromRunsCoverageProperty(t *testing.T) {
	const (
		trials     = 400
		runs       = 20
		confidence = 0.95
		truth      = 300001.0
		overhead   = 84.0
		noiseSD    = 35.0
	)
	rng := xrand.New(0xacc)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		counts := make([]float64, runs)
		for i := range counts {
			counts[i] = truth + overhead + noiseSD*rng.NormFloat64()
		}
		est, err := FromRuns(counts, overhead, confidence)
		if err != nil {
			t.Fatal(err)
		}
		if est.CI.Contains(truth) {
			covered++
		}
	}
	rate := float64(covered) / trials
	// Normal-theory intervals at n=20 run slightly under nominal (no t
	// correction); accept a band around 0.95 wide enough to be stable
	// under the fixed seed but tight enough to catch a broken interval.
	if rate < 0.88 || rate > 0.995 {
		t.Errorf("coverage = %.3f over %d trials, want ~%.2f", rate, trials, confidence)
	}
}

// TestFromRunsCoverageAcrossWorkloads varies the workload scale and
// noise shape: coverage must hold regardless of the ground truth's
// magnitude or the dispersion.
func TestFromRunsCoverageAcrossWorkloads(t *testing.T) {
	cases := []struct {
		name           string
		truth, sd, ovh float64
	}{
		{"null-bench", 0, 3, 84},
		{"small-loop", 3001, 10, 12},
		{"large-loop", 3_000_001, 500, 1500},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := xrand.New(xrand.Mix(0xacc, uint64(c.truth)))
			covered, trials := 0, 200
			for trial := 0; trial < trials; trial++ {
				counts := make([]float64, 16)
				for i := range counts {
					counts[i] = c.truth + c.ovh + c.sd*rng.NormFloat64()
				}
				est, err := FromRuns(counts, c.ovh, 0.95)
				if err != nil {
					t.Fatal(err)
				}
				if est.CI.Contains(c.truth) {
					covered++
				}
			}
			if rate := float64(covered) / float64(trials); rate < 0.85 {
				t.Errorf("coverage = %.3f, want >= 0.85", rate)
			}
		})
	}
}

// TestDuetCancelsSharedNoise injects a large noise component shared by
// both members of each pair (the model of co-located interference duet
// benchmarking targets) plus small independent jitter. The paired
// analysis must cancel the shared part: the paired variance stays near
// the independent jitter's scale, far below Var(A)+Var(B), and the
// delta CI both contains the true difference and is much tighter than
// an unpaired interval would be.
func TestDuetCancelsSharedNoise(t *testing.T) {
	const (
		n        = 64
		muA, muB = 5000.0, 4200.0 // true configuration means
		sharedSD = 300.0          // interference hitting both members
		ownSD    = 8.0            // per-member independent jitter
	)
	rng := xrand.New(0xd0e7)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		shared := sharedSD * rng.NormFloat64()
		a[i] = muA + shared + ownSD*rng.NormFloat64()
		b[i] = muB + shared + ownSD*rng.NormFloat64()
	}
	res, err := Duet(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CI.Contains(muA - muB) {
		t.Errorf("duet CI %+v excludes true delta %v", res.CI, muA-muB)
	}
	// The pairing must remove nearly all of the shared variance:
	// VarPaired ~ 2*ownSD² while VarIndependent ~ 2*sharedSD².
	if res.VarPaired > 8*2*ownSD*ownSD {
		t.Errorf("VarPaired = %v, want near %v (shared noise not cancelled)", res.VarPaired, 2*ownSD*ownSD)
	}
	if res.Cancellation < 0.95 {
		t.Errorf("Cancellation = %v, want >= 0.95", res.Cancellation)
	}
	// Compare against differencing two independent runs of the same
	// configurations: fresh noise draws, unpaired interval built from
	// Var(A)+Var(B).
	for i := 0; i < n; i++ {
		a[i] = muA + sharedSD*rng.NormFloat64() + ownSD*rng.NormFloat64()
		b[i] = muB + sharedSD*rng.NormFloat64() + ownSD*rng.NormFloat64()
	}
	indepSE := math.Sqrt((stats.Variance(a) + stats.Variance(b)) / n)
	z := stats.NormalQuantile(0.975)
	indepWidth := 2 * z * indepSE
	if res.CI.Width() >= indepWidth/4 {
		t.Errorf("duet CI width %v not substantially tighter than independent width %v",
			res.CI.Width(), indepWidth)
	}
}

// TestDuetUnsharedNoiseDoesNotCancel is the negative control: with no
// shared component the pairing must not claim cancellation.
func TestDuetUnsharedNoiseDoesNotCancel(t *testing.T) {
	rng := xrand.New(0xbad)
	n := 64
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = 100 + 50*rng.NormFloat64()
		b[i] = 90 + 50*rng.NormFloat64()
	}
	res, err := Duet(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancellation > 0.5 {
		t.Errorf("Cancellation = %v on independent noise, want near 0", res.Cancellation)
	}
}

// TestDuetDeterministic: identical inputs must produce identical
// results — the property the service's response determinism rests on.
func TestDuetDeterministic(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{0.5, 1.5, 3.5, 3.9, 5.2}
	r1, err := Duet(a, b, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Duet(a, b, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Mean != r2.Mean || r1.CI != r2.CI || r1.VarPaired != r2.VarPaired {
		t.Errorf("nondeterministic duet: %+v vs %+v", r1, r2)
	}
}
