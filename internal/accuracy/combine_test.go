package accuracy

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestCombineNeverWidens(t *testing.T) {
	a := Estimate{Raw: 102, Corrected: 100, StdErr: 4, N: 8, Confidence: 0.95}
	b := Estimate{Raw: 107, Corrected: 106, StdErr: 2, N: 4, Confidence: 0.95}
	got, err := Combine([]Estimate{a, b}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if got.StdErr > b.StdErr {
		t.Errorf("fused StdErr %v exceeds tightest input %v", got.StdErr, b.StdErr)
	}
	if got.N != 12 {
		t.Errorf("fused N = %d, want 12", got.N)
	}
	// The fused point must sit between the inputs, nearer the precise one.
	if got.Corrected <= a.Corrected || got.Corrected >= b.Corrected {
		t.Errorf("fused point %v outside (%v, %v)", got.Corrected, a.Corrected, b.Corrected)
	}
	if math.Abs(got.Corrected-b.Corrected) > math.Abs(got.Corrected-a.Corrected) {
		t.Errorf("fused point %v nearer the noisier input", got.Corrected)
	}
}

func TestCombineExactObservationDominates(t *testing.T) {
	got, err := Combine([]Estimate{
		{Corrected: 500, StdErr: 0, N: 1},
		{Corrected: 900, StdErr: 25, N: 16},
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Corrected != 500 || got.StdErr != 0 {
		t.Errorf("exact observation did not dominate: %+v", got)
	}
	if got.CI.Width() != 0 {
		t.Errorf("exact fusion should collapse the interval: %+v", got.CI)
	}
}

func TestCombineValidation(t *testing.T) {
	if _, err := Combine(nil, 0.95); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Combine([]Estimate{{Corrected: 1, StdErr: 1}}, 1.5); !errors.Is(err, ErrBadConfidence) {
		t.Errorf("bad confidence: %v", err)
	}
}

// TestCombineCoverage: fusing two unbiased noisy estimates of the same
// truth must keep nominal coverage while tightening the interval.
func TestCombineCoverage(t *testing.T) {
	const (
		trials = 400
		truth  = 80_000.0
		sdA    = 120.0
		sdB    = 60.0
	)
	rng := xrand.New(0xc0b1)
	covered := 0
	for i := 0; i < trials; i++ {
		a := Estimate{Corrected: truth + sdA*rng.NormFloat64(), StdErr: sdA, N: 5}
		b := Estimate{Corrected: truth + sdB*rng.NormFloat64(), StdErr: sdB, N: 5}
		got, err := Combine([]Estimate{a, b}, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if got.StdErr >= sdB {
			t.Fatalf("fusion failed to tighten: %v", got.StdErr)
		}
		if got.CI.Contains(truth) {
			covered++
		}
	}
	if rate := float64(covered) / trials; rate < 0.9 || rate > 0.99 {
		t.Errorf("coverage = %.3f, want ~0.95", rate)
	}
}
