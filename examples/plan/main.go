// Plan: drive the experiment planner in process — the same engine
// behind pcserved's /plan endpoint. State an accuracy goal (a relative
// confidence-interval half-width) for an event set larger than the
// hardware counter budget; the planner builds an anchor-pinned
// multiplexing schedule, chooses the replication count from a pilot's
// observed dispersion, executes it on the service's worker pools, and
// fuses the per-group estimates so every interval is at most the naive
// multiplexed one (see docs/PLANNING.md).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/plan"
	"repro/internal/service"
)

func main() {
	svc := service.New(service.Config{WorkersPerShard: 1, CalibrationRuns: 31})
	planner := plan.New(svc)

	resp, err := planner.Do(context.Background(), api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "array:2000000",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS", "BR_MISP_RETIRED"},
		},
		TargetRelWidth: 0.05, // +-5% at 95% confidence
		Counters:       2,    // pretend the machine spares us two registers
		PilotRuns:      3,
		MaxRuns:        24,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mode %s, anchor %s, %d groups:\n", resp.Plan.Mode, resp.Plan.Anchor, len(resp.Plan.Groups))
	for g, group := range resp.Plan.Groups {
		fmt.Printf("  group %d: %v\n", g, group.Events)
	}
	fmt.Printf("pilot %d runs -> planned %d runs; executed %d total (rounds %d)\n\n",
		resp.Plan.PilotRuns, resp.Plan.PlannedRuns, resp.TotalRuns, resp.Rounds)

	for _, est := range resp.Estimates {
		fmt.Printf("%-18s naive [%.0f, %.0f]  fused [%.0f, %.0f]  narrowing %4.1f%%  rel %.4f  attained %v\n",
			est.Event, est.Naive.Lo, est.Naive.Hi, est.Fused.Lo, est.Fused.Hi,
			100*est.Narrowing, est.RelWidth, est.Attained)
	}
	fmt.Printf("\ntarget +-%.0f%% attained: %v\n", 100*resp.Plan.Request.TargetRelWidth, resp.Attained)

	// The same request again: the calibrations, shard pools, and plan
	// determinism make the repeat cheap and byte-identical.
	again, err := planner.Do(context.Background(), resp.Plan.Request)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replanned: attained=%v, same anchor estimate: %v\n",
		again.Attained, again.Estimates[0].Fused.Corrected == resp.Estimates[0].Fused.Corrected)
}
