// Profiling: use the counter-overflow sampling machinery (the "other"
// usage model the paper's Section 9 contrasts with counting) to find
// where a two-phase program spends its instructions, and observe the
// accuracy/perturbation trade-off as the sampling period shrinks.
//
// This example drives the internal engine directly through the public
// experiment facade's substrate: it builds a program with two loops and
// profiles retired instructions.
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/sampling"
)

func main() {
	// Program: a 1M-iteration plain loop, then a 500k-iteration memory
	// loop. Phase A retires 3M instructions, phase B 2M.
	b := isa.NewBuilder("two-phase", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(1_000_000, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Loop(500_000, func(body *isa.Builder) {
		body.Emit(isa.Load(), isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	prog := b.Build()
	phaseA := prog.Addr(2) // first loop body
	phaseB := prog.Addr(6) // second loop body

	for _, period := range []int64{200_000, 20_000, 2_000} {
		k := kernel.New(cpu.Athlon64X2)
		prof, err := sampling.New(k, cpu.EventInstrRetired, period)
		if err != nil {
			log.Fatal(err)
		}
		p, err := prof.Run(prog, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("period %7d: %5d samples, estimate %8d (true %8d, %+.2f%%)\n",
			period, len(p.Samples), p.Estimate(), p.TrueCount, p.RelativeError()*100)
		for _, h := range p.Hotspots() {
			share := float64(h.Samples) / float64(len(p.Samples)) * 100
			name := "other"
			switch h.Addr {
			case phaseA:
				name = "phase A (plain loop)"
			case phaseB:
				name = "phase B (memory loop)"
			}
			if share >= 1 {
				fmt.Printf("    %-24s %5.1f%% of samples\n", name, share)
			}
		}
	}
	fmt.Println("\nPhase A holds ~60% of retired instructions (3M of 5M) and the")
	fmt.Println("sample shares converge on that split as the period shrinks —")
	fmt.Println("while each extra sample costs an interrupt that perturbs the run.")
}
