// Governor: reproduce the paper's Section 8 frequency-scaling
// guideline. Cycle counts of the same memory-touching workload are
// repeatable when the clock is pinned (performance governor) but
// scatter widely when the ondemand governor changes the frequency
// between and during measurements — because memory latency, fixed in
// wall time by the bus clock, changes in *cycles* with the core clock.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func stats(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, sd / mean
}

func main() {
	const iters = 1_000_000
	for _, gov := range []repro.Governor{repro.GovernorPerformance, repro.GovernorOndemand} {
		sys, err := repro.NewSystem(repro.CD, repro.StackPC, repro.WithGovernor(gov))
		if err != nil {
			log.Fatal(err)
		}
		var cycles []float64
		for r := 0; r < 40; r++ {
			m, err := sys.Measure(repro.Request{
				Bench:   repro.ArrayBenchmark(iters),
				Pattern: repro.StartRead,
				Mode:    repro.ModeUserKernel,
				Events:  []repro.Event{repro.EventCycles},
				Seed:    uint64(r) + 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			cycles = append(cycles, float64(m.Deltas[0]))
		}
		mean, cv := stats(cycles)
		fmt.Printf("%-12s governor: mean = %12.0f cycles, coefficient of variation = %.4f (now at %.1f GHz)\n",
			gov, mean, cv, sys.FrequencyGHz())
	}

	fmt.Println("\nGuideline (paper, Section 8): pin the processor frequency — set the")
	fmt.Println("performance (or powersave) governor — before measuring cycle counts.")
}
