// Multiplexing: measure four events with one hardware counter by
// time-sharing it (the Mytkowicz et al. problem the paper's Section 9
// situates next to its own). On a stationary loop the interpolated
// estimates are accurate; on a phased workload they bias.
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mpx"
)

func build(l1, l2 int64) *isa.Program {
	b := isa.NewBuilder("workload", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(l1, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	if l2 > 0 {
		b.Loop(l2, func(body *isa.Builder) {
			body.Emit(isa.Load(), isa.ALU(), isa.ALU(), isa.Branch(0, true))
		})
	}
	b.Emit(isa.Halt())
	return b.Build()
}

func main() {
	workloads := []struct {
		name string
		prog *isa.Program
		want float64
	}{
		{"stationary 8M-iter loop", build(8_000_000, 0), 1 + 3*8_000_000},
		{"phased 3M+3M loops", build(3_000_000, 3_000_000), 1 + 3*3_000_000 + 4*3_000_000},
	}
	for _, wl := range workloads {
		k := kernel.New(cpu.Core2Duo)
		m, err := mpx.New(k, 1, []cpu.Event{
			cpu.EventInstrRetired, cpu.EventCoreCycles,
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := m.Run(wl.prog, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (rotating %d groups on 1 counter):\n", wl.name, m.Groups())
		for _, e := range est {
			fmt.Printf("  %-18s observed %10d over %4.1f%% of the run -> estimate %12.0f\n",
				e.Event, e.Observed, e.ActiveFraction*100, e.Value)
		}
		instr := est[0]
		fmt.Printf("  instruction estimate error: %+.2f%% (true %0.f)\n\n",
			(instr.Value-wl.want)/wl.want*100, wl.want)
	}
	fmt.Println("Interpolation assumes a stationary event rate; the phased workload")
	fmt.Println("violates that and the estimate biases accordingly.")
}
