// TSC fast read: reproduce the paper's most counterintuitive finding
// (Figure 4, Section 4.1). Disabling the time stamp counter — one less
// register to read, so seemingly less work — makes perfctr measurements
// drastically *worse*, because the TSC is what enables perfctr's fast
// user-mode read path. Without it, every read becomes a system call.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func median(xs []int64) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

func main() {
	fmt.Println("perfctr on Core 2 Duo, null benchmark, user+kernel instructions")
	fmt.Printf("%-12s %14s %14s %10s\n", "pattern", "TSC enabled", "TSC disabled", "penalty")

	patterns := []repro.Pattern{repro.ReadRead, repro.ReadStop, repro.StartRead, repro.StartStop}
	for _, pat := range patterns {
		meds := map[bool]float64{}
		for _, tsc := range []bool{true, false} {
			sys, err := repro.NewSystem(repro.CD, repro.StackPC, repro.WithTSC(tsc))
			if err != nil {
				log.Fatal(err)
			}
			errs, err := sys.MeasureN(repro.Request{
				Bench:   repro.NullBenchmark(),
				Pattern: pat,
				Mode:    repro.ModeUserKernel,
			}, 41, 11)
			if err != nil {
				log.Fatal(err)
			}
			meds[tsc] = median(errs)
		}
		fmt.Printf("%-12s %14.1f %14.1f %9.1fx\n", pat, meds[true], meds[false], meds[false]/meds[true])
	}

	fmt.Println("\nPatterns that include a read while counting (read-read, read-stop)")
	fmt.Println("lose the fast user-mode path and pay two syscalls per measurement;")
	fmt.Println("start-stop never reads a running counter and is unaffected.")
	fmt.Println("Guideline (paper, Section 8): keep the TSC enabled with perfctr.")
}
