// Duration: reproduce the paper's Section 5 finding that the
// measurement error grows with the duration of the measured region when
// kernel-mode instructions are included — timer interrupts execute in
// kernel mode and are attributed to the running thread — but not when
// counting user-mode instructions only.
package main

import (
	"fmt"
	"log"

	"repro"
)

// fit computes the least-squares slope of y on x.
func fit(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func main() {
	sys, err := repro.NewSystem(repro.CD, repro.StackPC)
	if err != nil {
		log.Fatal(err)
	}

	sizes := []int64{10_000, 100_000, 250_000, 500_000, 1_000_000}
	fmt.Println("perfctr on Core 2 Duo, loop benchmark, error vs duration")
	fmt.Printf("%12s %18s %18s\n", "iterations", "u+k error (avg)", "user error (avg)")

	var xs, ysUK, ysU []float64
	for _, l := range sizes {
		var sumUK, sumU float64
		const runs = 60
		for r := 0; r < runs; r++ {
			for _, mode := range []repro.MeasureMode{repro.ModeUserKernel, repro.ModeUser} {
				m, err := sys.Measure(repro.Request{
					Bench:   repro.LoopBenchmark(l),
					Pattern: repro.StartRead,
					Mode:    mode,
					Seed:    uint64(l) + uint64(r)*131,
				})
				if err != nil {
					log.Fatal(err)
				}
				e := float64(m.Deltas[0] - m.Expected)
				if mode == repro.ModeUserKernel {
					sumUK += e
					xs = append(xs, float64(l))
					ysUK = append(ysUK, e)
				} else {
					sumU += e
					ysU = append(ysU, e)
				}
			}
		}
		fmt.Printf("%12d %18.1f %18.1f\n", l, sumUK/runs, sumU/runs)
	}

	fmt.Printf("\nregression slopes (extra instructions per loop iteration):\n")
	fmt.Printf("  user+kernel: %+.6f   (paper, Figure 7: ~0.002 for pc on CD)\n", fit(xs, ysUK))
	fmt.Printf("  user only:   %+.8f (paper, Figure 8: within a few millionths)\n", fit(xs, ysU))
}
