// Infer: drive the constraint-graph inference engine in process — the
// same engine behind pcserved's /infer endpoint. Events are not
// independent quantities: the ISA ties them together (a core retires
// at most width instructions per cycle, TLB misses cannot outnumber
// cache misses, counts are non-negative), so measuring one event is
// evidence about the others. The engine conditions the per-event
// Gaussian estimates on those invariants and returns posterior
// estimates whose intervals never widen, plus residuals flagging
// inputs that violate their invariants (see docs/INFERENCE.md).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/bayes"
	"repro/internal/service"
)

func main() {
	svc := service.New(service.Config{WorkersPerShard: 1, CalibrationRuns: 31})
	ctx := context.Background()

	// Three events measured on the same configuration, inferred jointly
	// under the built-in invariant library.
	measure := func(event string) api.InferInput {
		return api.InferInput{Measure: &api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "array:1000000", Pattern: "rr",
			Runs: 6, Events: []string{event},
		}}
	}
	resp, err := svc.Infer(ctx, api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{
			measure("INSTR_RETIRED"),
			measure("CPU_CLK_UNHALTED"),
			measure("DCACHE_MISS"),
		},
	}}})
	if err != nil {
		log.Fatal(err)
	}
	res := resp.Results[0]
	fmt.Printf("measured inputs under the %s invariant library:\n", res.Item.Processor)
	for i, post := range res.Posterior {
		prior := res.Prior[i]
		fmt.Printf("  %-18s prior [%.0f, %.0f]  posterior [%.0f, %.0f]\n",
			post.Event, prior.Lo, prior.Hi, post.Lo, post.Hi)
	}
	fmt.Printf("  mean tightening %.1f%%, consistent=%v, %d invariants checked\n\n",
		100*res.Tightening, res.Consistent, len(res.Residuals))

	// Raw inputs with an explicit constraint: the BayesPerf-style sum
	// decomposition TOTAL = A + B. The equality conditions all three
	// estimates jointly — every interval tightens.
	resp, err = svc.Infer(ctx, api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{
			{Event: "TOTAL", Mean: 1480, Variance: 900},
			{Event: "A", Mean: 1010, Variance: 400},
			{Event: "B", Mean: 505, Variance: 625},
		},
		Constraints: []api.InferConstraint{{
			Name: "decompose",
			Terms: []bayes.Term{
				{Event: "TOTAL", Coef: 1}, {Event: "A", Coef: -1}, {Event: "B", Coef: -1},
			},
			Op: bayes.OpEq, RHS: 0,
		}},
	}}})
	if err != nil {
		log.Fatal(err)
	}
	res = resp.Results[0]
	fmt.Println("raw inputs under TOTAL = A + B:")
	for i, post := range res.Posterior {
		prior := res.Prior[i]
		fmt.Printf("  %-6s %7.1f ± %5.1f  ->  %7.1f ± %5.1f\n",
			post.Event, prior.Corrected, prior.StdErr, post.Corrected, post.StdErr)
	}
	fmt.Printf("  posterior satisfies the constraint: %.6f\n\n",
		res.Posterior[0].Corrected-res.Posterior[1].Corrected-res.Posterior[2].Corrected)

	// Inconsistent inputs: ITLB misses cannot outnumber i-cache misses
	// on this ISA. The residual flags the violation (event validation);
	// the posterior reconciles it.
	resp, err = svc.Infer(ctx, api.InferRequest{Items: []api.InferItem{{
		Processor: "K8",
		Inputs: []api.InferInput{
			{Event: "ITLB_MISS", Mean: 4000, Variance: 100},
			{Event: "ICACHE_MISS", Mean: 40, Variance: 100},
		},
	}}})
	if err != nil {
		log.Fatal(err)
	}
	res = resp.Results[0]
	fmt.Println("planted inconsistency (ITLB_MISS > ICACHE_MISS):")
	for _, r := range res.Residuals {
		if r.Violated {
			fmt.Printf("  flagged %s: off by %.0f counts (%.0f sigma)\n", r.Constraint, r.Value, r.Sigma)
		}
	}
	fmt.Printf("  reconciled: ITLB %.1f <= ICACHE %.1f\n",
		res.Posterior[0].Corrected, res.Posterior[1].Corrected)
}
