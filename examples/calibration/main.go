// Calibration: apply the paper's guidelines (Section 8) to obtain an
// accurate fine-grained measurement. The fixed cost of the measurement
// calls is estimated with the null benchmark — whose true count is zero
// — and subtracted from subsequent measurements, removing most of the
// infrastructure-induced error.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func median(xs []int64) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

func main() {
	// Best-practice configuration per the paper: direct perfmon use for
	// user-mode counts, read-read pattern, one counter register.
	sys, err := repro.NewSystem(repro.K8, repro.StackPM)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: calibrate with the null benchmark.
	nullErrs, err := sys.MeasureN(repro.Request{
		Bench:   repro.NullBenchmark(),
		Pattern: repro.ReadRead,
		Mode:    repro.ModeUser,
	}, 101, 1)
	if err != nil {
		log.Fatal(err)
	}
	calibration := median(nullErrs)
	fmt.Printf("calibration (median null-benchmark count): %.1f instructions\n\n", calibration)

	// Step 2: measure short code regions and subtract the calibration.
	fmt.Printf("%12s %12s %12s %12s %12s\n", "loop iters", "true count", "raw", "calibrated", "resid. err")
	for _, iters := range []int64{10, 100, 1000, 10000} {
		bench := repro.LoopBenchmark(iters)
		m, err := sys.Measure(repro.Request{
			Bench:   bench,
			Pattern: repro.ReadRead,
			Mode:    repro.ModeUser,
			Seed:    uint64(iters),
		})
		if err != nil {
			log.Fatal(err)
		}
		raw := m.Deltas[0]
		calibrated := float64(raw) - calibration
		fmt.Printf("%12d %12d %12d %12.1f %+12.1f\n",
			iters, bench.ExpectedInstr, raw, calibrated, calibrated-float64(bench.ExpectedInstr))
	}

	fmt.Println("\nAfter calibration the residual error is a handful of instructions —")
	fmt.Println("small enough to measure code regions of a few dozen instructions.")
}
