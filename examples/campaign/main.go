// Campaign: drive the adversarial counter-validation layer in process
// — the same engine behind pcserved's /campaigns endpoint. A campaign
// generates random (but seeded, hence reproducible) programs, computes
// each one's exact analytic truth, sweeps it through the measurement,
// inference, and planning layers on every processor model, and emits a
// finding whenever the system contradicts itself: engines diverging,
// an invariant refuted, a posterior wider than its prior, a fused
// interval wider than naive, or a confidence interval grossly missing
// the truth (see docs/CAMPAIGNS.md).
//
// The stock models survive their own campaign. To prove the attack has
// teeth, a second campaign runs against a deliberately broken
// invariant library (retire width 1): tight loops retire more than one
// instruction per cycle, so the planted invariant is refuted.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/bayes"
	"repro/internal/campaign"
	"repro/internal/cpu"
	"repro/internal/plan"
	"repro/internal/service"
)

func main() {
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 5})
	planner := plan.New(svc)
	services := campaign.Services{Measure: svc.Measure, Infer: svc.Infer, Plan: planner.Do}

	// A small campaign over the stock models: every check enabled, zero
	// findings expected.
	run(services, campaign.Config{SweepInterval: -1}, api.CampaignRequest{
		Seed: 11, Programs: 6, Runs: 4, Scale: 2,
		InferEvery: 2, PlanEvery: 3, EngineEvery: 1,
	}, "stock models")

	// The same sweep against a sabotaged invariant library. Claiming the
	// cores retire at most one instruction per cycle makes the
	// superscalar-width invariant false — and the campaign catches it.
	sabotaged := campaign.Config{
		SweepInterval: -1,
		Invariants: func(m *cpu.Model) bayes.Model {
			bad := *m
			bad.RetireWidth = 1
			return bayes.Library(&bad)
		},
	}
	run(services, sabotaged, api.CampaignRequest{
		Seed: 11, Programs: 6, Runs: 4, Scale: 2, InferEvery: 1,
	}, "planted retire-width=1 invariants")
}

// run opens one campaign, follows its stream to the end event, and
// prints the findings and summary.
func run(svc campaign.Services, cfg campaign.Config, req api.CampaignRequest, label string) {
	reg := campaign.NewRegistry(svc, cfg)
	defer reg.Close()
	camp, err := reg.Open(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign %s against %s:\n", camp.ID, label)

	camp.Subscribe()
	defer camp.Unsubscribe()
	i := 0
	for {
		lines, next, wait, done := camp.Events(i)
		i = next
		for _, line := range lines {
			var ev api.CampaignEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				log.Fatal(err)
			}
			switch ev.Type {
			case api.CampaignEventFinding:
				f := ev.Finding
				fmt.Printf("  FINDING %-18s program %d (%s) on %s: %s\n",
					f.Check, f.Program, f.Spec, f.Processor, f.Detail)
			case api.CampaignEventSummary:
				s := ev.Summary
				fmt.Printf("  swept %d programs, %d measurements, %d findings",
					s.Programs, s.Measurements, s.Findings)
				if s.Coverage.N > 0 {
					fmt.Printf(", CI coverage %d/%d missed (rate %.3f, bound %.3f)",
						s.Coverage.Misses, s.Coverage.N, s.Coverage.Rate, s.Coverage.Bound)
				}
				fmt.Println()
			case api.CampaignEventEnd:
				fmt.Printf("  ended: %s\n\n", ev.Reason)
			}
		}
		if len(lines) > 0 {
			continue
		}
		if done {
			return
		}
		<-wait
	}
}
