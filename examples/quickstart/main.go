// Quickstart: measure the paper's loop benchmark through the PAPI
// high-level API on a simulated Athlon 64 X2 — the simplest possible
// use of the library — and see how far the counted instructions deviate
// from the analytical ground truth ie = 1 + 3*MAX.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// PAPI high-level on perfctr: the easiest stack to program against,
	// and per the paper (Table 3) the least accurate one.
	sys, err := repro.NewSystem(repro.K8, repro.StackPHpc)
	if err != nil {
		log.Fatal(err)
	}

	const iterations = 100_000
	bench := repro.LoopBenchmark(iterations)

	fmt.Printf("measuring %s on %s via %s\n", bench, sys.Processor(), sys.Stack())
	fmt.Printf("analytical ground truth: 1 + 3*%d = %d instructions\n\n", iterations, bench.ExpectedInstr)

	for run := 0; run < 5; run++ {
		m, err := sys.Measure(repro.Request{
			Bench:   bench,
			Pattern: repro.StartRead, // PAPI_start_counters ... PAPI_read_counters
			Mode:    repro.ModeUser,
			Seed:    uint64(run),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: counted %d instructions (error %+d)\n",
			run, m.Deltas[0], m.Deltas[0]-m.Expected)
	}

	fmt.Println("\nThe constant surplus is the measurement infrastructure itself:")
	fmt.Println("the instructions of PAPI_start_counters and PAPI_read_counters that")
	fmt.Println("execute inside the measurement window (paper, Section 4).")
}
