// Cluster: the coordinator tier in process — a 3-node fleet of real
// pcserved nodes (internal/server) behind the consistent-hash front
// (internal/cluster, the engine behind cmd/pcfront). The demo proves
// the cluster contract from the outside:
//
//  1. Byte-identity: the same request answered through the front and
//     directly by each node, all four bodies identical byte for byte —
//     determinism makes placement an efficiency decision, not a
//     correctness one.
//  2. Affinity: identical requests hash to one owning node, so that
//     node's calibration cache and request coalescing see every twin.
//  3. Failover: kill the owning node; the next request fails over to a
//     surviving replica and the body does not change.
//  4. Drain: drain a node, watch new keys route around it, undrain.
//  5. Stitched tracing: a traced request through the front yields one
//     tree — the front's route/forward spans on top, the backend's own
//     trace nested verbatim underneath — and the fleet federates into
//     one /cluster/metrics exposition.
//
// See docs/CLUSTER.md for the topology, hashing, hedging, and drain
// semantics, and docs/OBSERVABILITY.md for the trace catalogue.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	// Three real measurement nodes, each the full pcserved handler.
	var urls []string
	var backends []*httptest.Server
	for i := 0; i < 3; i++ {
		node := server.New(server.Config{
			Workers:         2,
			CalibrationRuns: 5,
			Monitor:         monitor.Config{SweepInterval: -1},
			Campaign:        campaign.Config{SweepInterval: -1},
		})
		defer node.Close()
		srv := httptest.NewServer(node.Handler())
		defer srv.Close()
		backends = append(backends, srv)
		urls = append(urls, srv.URL)
	}

	front, err := cluster.NewFront(cluster.Config{
		Backends:      urls,
		ProbeInterval: -1, // no background prober in a demo
		HedgeAfter:    -1,
		FailAfter:     1, // first transport failure ejects a dead node
	})
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	proxy := httptest.NewServer(front.Handler())
	defer proxy.Close()

	req := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:10000", Pattern: "rr", Runs: 5}
	body, _ := json.Marshal(req)

	// 1. Byte-identity: through the front vs directly on every node.
	viaFront, backend := post(proxy.URL+"/measure", body)
	identical := true
	for _, b := range backends {
		direct, _ := post(b.URL+"/measure", body)
		identical = identical && bytes.Equal(viaFront, direct)
	}
	fmt.Printf("byte-identity: front answer (%d bytes, served by %s) matches all 3 direct answers: %v\n",
		len(viaFront), backend, identical)

	// 2. Affinity: the ring owner serves every identical request.
	key, err := api.RequestKeyForPath("/measure", body)
	if err != nil {
		log.Fatal(err)
	}
	owner := front.Cluster().Owner(key).Name
	stable := true
	for i := 0; i < 5; i++ {
		_, served := post(proxy.URL+"/measure", body)
		stable = stable && served == owner
	}
	fmt.Printf("affinity:      ring owner %s served 5/5 identical requests: %v\n", owner, stable)

	// 3. Failover: kill the owner; the answer must not change.
	for i, b := range backends {
		if b.URL == front.Cluster().Owner(key).Base {
			b.Close()
			fmt.Printf("failover:      killed owning node %d (%s)\n", i, owner)
			break
		}
	}
	afterKill, survivor := post(proxy.URL+"/measure", body)
	fmt.Printf("failover:      %s answered, body unchanged: %v\n", survivor, bytes.Equal(viaFront, afterKill))

	// 4. Drain: take a surviving node out of rotation, then back in.
	name := survivor
	if _, err := front.Cluster().Drain(name); err != nil {
		log.Fatal(err)
	}
	avoided := true
	for i := 0; i < 5; i++ {
		_, served := post(proxy.URL+"/measure", body)
		avoided = avoided && served != name
	}
	fmt.Printf("drain:         draining %s; 5/5 requests routed elsewhere: %v\n", name, avoided)
	if _, err := front.Cluster().Undrain(name); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drain:         %s undrained, state %s\n", name, front.Cluster().NodeInfo(name).State)

	// 5. Stitched tracing: the traced twin carries the cluster tree —
	// front spans plus the backend's trace verbatim — and everything
	// outside the trace block is untouched.
	treq := req
	treq.Trace = true
	tbody, _ := json.Marshal(treq)
	traced, _ := post(proxy.URL+"/measure", tbody)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(traced, &m); err != nil {
		log.Fatal(err)
	}
	var tree api.TraceInfo
	if err := json.Unmarshal(m["trace"], &tree); err != nil {
		log.Fatal(err)
	}
	var sub api.TraceInfo
	if err := json.Unmarshal(tree.Backend, &sub); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace:         origin=%s front spans=%d backend subtree spans=%d shape=%s\n",
		tree.Origin, len(tree.Spans), len(sub.Spans), tree.Shape())

	// The fleet in one scrape: the front's own families plus every
	// backend's /metrics merged (counters summed, gauges per node).
	fresp, err := http.Get(proxy.URL + "/cluster/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer fresp.Body.Close()
	fams, err := telemetry.ParseExposition(fresp.Body)
	if err != nil {
		log.Fatal(err)
	}
	merged := 0
	for _, fam := range fams {
		if strings.HasPrefix(fam.Name, "pcserved_") {
			merged++
		}
	}
	fmt.Printf("federation:    /cluster/metrics carries %d families, %d merged from the backends\n",
		len(fams), merged)
}

// post sends a JSON body and returns the response body and the serving
// backend (from the front's routing header; empty on direct requests).
func post(url string, body []byte) ([]byte, string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d, err %v", url, resp.StatusCode, err)
	}
	return data, resp.Header.Get(api.HeaderBackend)
}
