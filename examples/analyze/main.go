// Analyze: drive the error-model layer in process — the same engine
// behind pcserved's batched /analyze endpoint. One batch asks for a
// calibrated counting estimate, a multiplexed estimate (four events on
// two hardware counters), and a duet comparison of a loop measurement
// against the null benchmark; every answer comes back as a corrected
// estimate with a confidence interval and named correction terms (see
// docs/ACCURACY.md).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/service"
)

func main() {
	svc := service.New(service.Config{WorkersPerShard: 1, CalibrationRuns: 31})

	duet := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null", Pattern: "rr"}
	batch := api.AnalyzeRequest{Items: []api.AnalyzeItem{
		{Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:100000", Pattern: "rr", Runs: 8,
		}},
		{
			Measure: api.MeasureRequest{
				Processor: "K8", Stack: "pc", Bench: "loop:2000000", Pattern: "ar",
				Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED", "ICACHE_MISS"},
				Runs:   3,
			},
			MpxCounters: 2,
		},
		{
			Measure: api.MeasureRequest{
				Processor: "K8", Stack: "pc", Bench: "loop:50000", Pattern: "rr", Runs: 12,
			},
			Duet: &duet,
		},
	}}

	resp, err := svc.Analyze(context.Background(), batch)
	if err != nil {
		log.Fatal(err)
	}

	counting := resp.Results[0]
	fmt.Printf("counting   (truth %d):\n  %s\n", counting.Expected, counting.Counting[0])
	fmt.Printf("  calibration offset %.0f (%s, %d samples)\n\n",
		counting.Calibration.Offset, counting.Calibration.Strategy, counting.Calibration.Samples)

	mpx := resp.Results[1]
	fmt.Printf("multiplexed (truth %d, 4 events on 2 counters):\n", mpx.Expected)
	for _, est := range mpx.Multiplexed {
		fmt.Printf("  %s\n", est)
	}

	d := resp.Results[2].Duet
	fmt.Printf("\nduet loop:50000 vs null (counter-0 error delta):\n")
	fmt.Printf("  mean %+.1f [%.1f, %.1f], var paired %.2f vs independent %.2f (cancellation %.0f%%)\n",
		d.Mean, d.Lo, d.Hi, d.VarPaired, d.VarIndependent, 100*d.Cancellation)
}
