// Patterns: compare the four counter access patterns of the paper's
// Table 2 across the two direct stacks (libpfm/perfmon2 and
// libperfctr/perfctr) on the Core 2 Duo, in both counting modes —
// a miniature of the paper's Section 4 analysis showing why the choice
// of pattern matters.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func median(xs []int64) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

func main() {
	patterns := []repro.Pattern{repro.StartRead, repro.StartStop, repro.ReadRead, repro.ReadStop}
	modes := []repro.MeasureMode{repro.ModeUser, repro.ModeUserKernel}

	for _, stack := range []string{repro.StackPM, repro.StackPC} {
		sys, err := repro.NewSystem(repro.CD, stack)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("null-benchmark error on CD via %s (median of 31 runs)\n", stack)
		fmt.Printf("%-12s %14s %14s\n", "pattern", "user", "user+kernel")
		for _, pat := range patterns {
			fmt.Printf("%-12s", pat)
			for _, mode := range modes {
				errs, err := sys.MeasureN(repro.Request{
					Bench:   repro.NullBenchmark(),
					Pattern: pat,
					Mode:    mode,
				}, 31, 7)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %14.1f", median(errs))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	fmt.Println("Patterns that read while counters run (rr, ro) behave differently")
	fmt.Println("from start/stop-based patterns; the best choice depends on the")
	fmt.Println("stack and the counting mode (paper, Sections 4.1-4.2).")
}
