// Engine: the two execution engines side by side. Every measurement in
// this repository executes on either the per-instruction interpreter or
// the block-dispatch compiled engine; a conformance suite guarantees
// the choice never changes a result. This example makes both halves of
// that claim observable: identical counter deltas from both engines on
// identical configurations, and the compiled engine's speedup on the
// long programs where block dispatch pays (see docs/ENGINE.md).
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	"repro"
)

func measure(sys *repro.System, bench *repro.Benchmark, seed uint64) *repro.Measurement {
	m, err := sys.Measure(repro.Request{
		Bench:   bench,
		Pattern: repro.StartRead,
		Mode:    repro.ModeUserKernel,
		Events:  []repro.Event{repro.EventInstructions, repro.EventCycles},
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	interp, err := repro.NewSystem(repro.PD, repro.StackPC,
		repro.WithEngine(repro.NewInterpreterEngine()))
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := repro.NewSystem(repro.PD, repro.StackPC,
		repro.WithEngine(repro.NewCompiledEngine()))
	if err != nil {
		log.Fatal(err)
	}

	workloads := []struct {
		name  string
		bench *repro.Benchmark
	}{
		{"loop 1M iterations", repro.LoopBenchmark(1_000_000)},
		{"array 1M elements", repro.ArrayBenchmark(1_000_000)},
	}

	fmt.Println("Conformance: same configuration, both engines, compared field by field.")
	for _, w := range workloads {
		for seed := uint64(1); seed <= 3; seed++ {
			mi := measure(interp, w.bench, seed)
			mc := measure(compiled, w.bench, seed)
			if !reflect.DeepEqual(mi.Deltas, mc.Deltas) {
				log.Fatalf("%s seed %d: engines diverged:\ninterpreter: %v\ncompiled:    %v",
					w.name, seed, mi.Deltas, mc.Deltas)
			}
			fmt.Printf("  %-20s seed %d: instr=%d cycles=%d  (identical on both engines)\n",
				w.name, seed, mi.Deltas[0], mi.Deltas[1])
		}
	}

	fmt.Println("\nThroughput: wall-clock per measurement, same workloads.")
	const reps = 5
	for _, w := range workloads {
		timeIt := func(sys *repro.System) time.Duration {
			start := time.Now()
			for r := 0; r < reps; r++ {
				measure(sys, w.bench, uint64(r)+10)
			}
			return time.Since(start) / reps
		}
		ti, tc := timeIt(interp), timeIt(compiled)
		fmt.Printf("  %-20s interpreter %8s   compiled %8s   speedup %.1fx\n",
			w.name, ti.Round(time.Microsecond), tc.Round(time.Microsecond),
			float64(ti)/float64(tc))
	}

	fmt.Println("\nThe compiled engine pre-lowers each program into basic blocks with")
	fmt.Println("precomputed event deltas and bulk-applies a block only when that is")
	fmt.Println("provably byte-identical to stepping it — exact dyadic cycle sums,")
	fmt.Println("exact cold-fetch folding, fallback to stepping whenever a timer")
	fmt.Println("tick or overflow could land mid-block. Identical results are the")
	fmt.Println("contract, not an accident: docs/ENGINE.md.")
}
