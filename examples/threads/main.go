// Threads: demonstrate why the kernel extensions exist at all
// (paper, Section 2.3). Hardware counters count whatever runs on the
// core; per-thread ("virtualized") counts require the kernel to save
// and restore counter state at every context switch. This example runs
// work on two threads and shows that each thread's virtual count covers
// only its own instructions, while the raw hardware total keeps
// counting across switches.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/perfctr"
)

func work(n int) *isa.Program {
	b := isa.NewBuilder("work", 0x4000)
	b.ALUBlock(n)
	b.Emit(isa.Halt())
	return b.Build()
}

func main() {
	k := kernel.New(cpu.Athlon64X2)
	pc, err := perfctr.New(k, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := pc.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true}}); err != nil {
		log.Fatal(err)
	}
	k.Core.PMU.Enable(1)

	// Thread 1 runs 10000 instructions.
	if err := k.Core.Run(work(9_999)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread 1 after its work:      virtual count = %d\n", pc.VSet().Read(0))

	// Switch to thread 2, which runs 50000 instructions.
	t2 := k.SpawnThread()
	if err := k.SwitchTo(t2); err != nil {
		log.Fatal(err)
	}
	if err := k.Core.Run(work(49_999)); err != nil {
		log.Fatal(err)
	}
	v2, err := pc.VSet().ReadThread(t2, 0)
	if err != nil {
		log.Fatal(err)
	}
	v1, err := pc.VSet().ReadThread(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread 2 after its work:      virtual count = %d\n", v2)
	fmt.Printf("thread 1, unchanged:          virtual count = %d\n", v1)

	// Switch back and continue thread 1.
	if err := k.SwitchTo(1); err != nil {
		log.Fatal(err)
	}
	if err := k.Core.Run(work(4_999)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread 1 after more work:     virtual count = %d\n", pc.VSet().Read(0))

	fmt.Println("\nWithout virtualization, thread 1 would have observed thread 2's")
	fmt.Println("50000 instructions in its own counts. The save/restore that makes")
	fmt.Println("this work is also the code whose cost the paper measures.")
}
