package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

func TestProcessorsAndStacks(t *testing.T) {
	if got := repro.Processors(); len(got) != 3 || got[0] != repro.PD {
		t.Errorf("Processors() = %v", got)
	}
	stacks := repro.Stacks()
	if len(stacks) != 6 {
		t.Errorf("Stacks() = %v", stacks)
	}
	for _, want := range []string{repro.StackPM, repro.StackPC, repro.StackPLpm, repro.StackPLpc, repro.StackPHpm, repro.StackPHpc} {
		found := false
		for _, s := range stacks {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("stack %s missing from %v", want, stacks)
		}
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := repro.NewSystem("P6", repro.StackPM); err == nil {
		t.Error("unknown processor accepted")
	}
	if _, err := repro.NewSystem(repro.K8, "zz"); err == nil {
		t.Error("unknown stack accepted")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys, err := repro.NewSystem(repro.CD, repro.StackPLpc, repro.WithTSC(true), repro.WithGovernor(repro.GovernorPerformance))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stack() != repro.StackPLpc || sys.Processor() != repro.CD {
		t.Errorf("accessors: %s %s", sys.Stack(), sys.Processor())
	}
	if sys.FrequencyGHz() != 2.4 {
		t.Errorf("frequency = %v", sys.FrequencyGHz())
	}
	if sys.ProcessStartupCost() < 1_000_000 {
		t.Errorf("startup cost = %d", sys.ProcessStartupCost())
	}
}

func TestFacadeMeasure(t *testing.T) {
	sys, err := repro.NewSystem(repro.K8, repro.StackPM)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Measure(repro.Request{
		Bench:   repro.LoopBenchmark(5000),
		Pattern: repro.ReadRead,
		Mode:    repro.ModeUser,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Expected != 15001 {
		t.Errorf("expected = %d", m.Expected)
	}
	errv := m.Deltas[0] - m.Expected
	if errv < 30 || errv > 50 {
		t.Errorf("user rr error = %d, want ~37", errv)
	}

	errs, err := sys.MeasureN(repro.Request{
		Bench:   repro.NullBenchmark(),
		Pattern: repro.ReadRead,
		Mode:    repro.ModeUser,
	}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 9 {
		t.Errorf("MeasureN len = %d", len(errs))
	}
}

func TestFacadeCycleMeasurement(t *testing.T) {
	sys, err := repro.NewSystem(repro.K8, repro.StackPM)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Measure(repro.Request{
		Bench:   repro.LoopBenchmark(1_000_000),
		Pattern: repro.StartRead,
		Mode:    repro.ModeUserKernel,
		Events:  []repro.Event{repro.EventCycles},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpi := float64(m.Deltas[0]) / 1_000_000
	if cpi < 1.9 || cpi > 3.3 {
		t.Errorf("K8 cycles/iteration = %v, want in [2, 3.2] (Figure 11)", cpi)
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	ids := repro.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments")
	}
	for _, id := range ids {
		if repro.ExperimentTitle(id) == "" {
			t.Errorf("no title for %s", id)
		}
	}
	var buf bytes.Buffer
	res, err := repro.RunExperiment("table1", &buf, repro.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "table1" {
		t.Errorf("result id = %s", res.ID())
	}
	if !strings.Contains(buf.String(), "Pentium D 925") {
		t.Error("render output missing processor")
	}
	if _, err := repro.RunExperiment("bogus", &buf, repro.Quick); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeSweep(t *testing.T) {
	pm, err := repro.NewSystem(repro.CD, repro.StackPM)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := repro.NewSystem(repro.CD, repro.StackPC)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := repro.Sweep(repro.SweepConfig{
		Systems: []repro.SweepSystem{pm.ForSweep(), pc.ForSweep()},
		Runs:    2,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	stacks := map[string]bool{}
	for _, r := range recs {
		stacks[r.Stack] = true
	}
	if !stacks["pm"] || !stacks["pc"] {
		t.Errorf("stacks covered: %v", stacks)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() int64 {
		sys, err := repro.NewSystem(repro.PD, repro.StackPHpm)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Measure(repro.Request{
			Bench:   repro.ArrayBenchmark(10_000),
			Pattern: repro.StartStop,
			Mode:    repro.ModeUserKernel,
			Seed:    42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Deltas[0]
	}
	if a, b := run(), run(); a != b {
		t.Errorf("not reproducible: %d vs %d", a, b)
	}
}
