package repro_test

// Race audit of the facade, run routinely under -race in CI: the
// simulator keeps all mutable state inside each System (kernel, core,
// PMU, infrastructure), and the experiment registry and event/model
// tables are immutable after init. These tests pin that property — the
// foundation the pooling service (internal/service) builds on. A
// single System is NOT safe for concurrent use; pools serialize access
// per system.

import (
	"io"
	"reflect"
	"sync"
	"testing"

	"repro"
)

// TestConcurrentDistinctSystems drives many systems in parallel —
// including two on the same (processor, stack) configuration — and
// checks results match a sequential rerun.
func TestConcurrentDistinctSystems(t *testing.T) {
	configs := []struct {
		proc  repro.Processor
		stack string
	}{
		{repro.K8, repro.StackPC},
		{repro.K8, repro.StackPC}, // same configuration twice: no sharing
		{repro.K8, repro.StackPM},
		{repro.CD, repro.StackPLpc},
		{repro.CD, repro.StackPHpm},
		{repro.PD, repro.StackPC},
	}
	req := repro.Request{
		Bench:   repro.LoopBenchmark(2000),
		Pattern: repro.StartRead,
		Mode:    repro.ModeUser,
	}

	parallel := make([][]int64, len(configs))
	var wg sync.WaitGroup
	for i, cfg := range configs {
		wg.Add(1)
		go func(i int, proc repro.Processor, stack string) {
			defer wg.Done()
			sys, err := repro.NewSystem(proc, stack)
			if err != nil {
				t.Errorf("NewSystem(%s, %s): %v", proc, stack, err)
				return
			}
			errs, err := sys.MeasureN(req, 5, 1)
			if err != nil {
				t.Errorf("MeasureN(%s, %s): %v", proc, stack, err)
				return
			}
			parallel[i] = errs
		}(i, cfg.proc, cfg.stack)
	}
	wg.Wait()

	for i, cfg := range configs {
		sys, err := repro.NewSystem(cfg.proc, cfg.stack)
		if err != nil {
			t.Fatal(err)
		}
		sequential, err := sys.MeasureN(req, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel[i], sequential) {
			t.Errorf("config %d (%s/%s): parallel %v != sequential %v",
				i, cfg.proc, cfg.stack, parallel[i], sequential)
		}
	}
}

// TestConcurrentExperiments runs paper experiments in parallel; each
// builds its own systems, so runs must neither race nor interfere.
func TestConcurrentExperiments(t *testing.T) {
	ids := []string{"table1", "table2", "fig4", "fig4"} // duplicate: no sharing
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if _, err := repro.RunExperiment(id, io.Discard, repro.Quick); err != nil {
				t.Errorf("RunExperiment(%s): %v", id, err)
			}
		}(id)
	}
	wg.Wait()
}

// TestResetRestoresBootBehavior checks System.Reset erases execution
// history: a reset system reproduces a fresh system's measurements
// exactly, even for cycle counts whose fractional accumulation is the
// subtlest cross-run leak.
func TestResetRestoresBootBehavior(t *testing.T) {
	req := repro.Request{
		Bench:   repro.LoopBenchmark(1500),
		Pattern: repro.ReadRead,
		Mode:    repro.ModeUser,
		Events:  []repro.Event{repro.EventCycles},
		Seed:    11,
	}

	fresh, err := repro.NewSystem(repro.CD, repro.StackPC)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Measure(req)
	if err != nil {
		t.Fatal(err)
	}

	used, err := repro.NewSystem(repro.CD, repro.StackPC)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the system with unrelated traffic, then reset.
	for i := 0; i < 3; i++ {
		if _, err := used.Measure(repro.Request{
			Bench:   repro.ArrayBenchmark(333),
			Pattern: repro.StartStop,
			Mode:    repro.ModeUserKernel,
			Events:  []repro.Event{repro.EventCycles},
			Seed:    uint64(100 + i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	used.Reset()
	got, err := used.Measure(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset system diverges from fresh system:\ngot  %+v\nwant %+v", got, want)
	}

	// Calibration is deterministic too — the property the service's
	// calibration cache relies on.
	used.Reset()
	c1, err := used.Calibrate(repro.ReadRead, repro.ModeUser, repro.O2, 9, 77)
	if err != nil {
		t.Fatal(err)
	}
	fresh2, err := repro.NewSystem(repro.CD, repro.StackPC)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := fresh2.Calibrate(repro.ReadRead, repro.ModeUser, repro.O2, 9, 77)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("calibration not deterministic: %+v vs %+v", c1, c2)
	}
}
